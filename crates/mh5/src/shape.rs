//! Dataset shapes, chunk grids, and hyperslab/box arithmetic.
//!
//! All datasets are row-major. A dataset of shape `S` with chunk shape `C`
//! is stored as a grid of `ceil(S_i / C_i)` chunks per axis; *edge chunks are
//! clipped* — a chunk stores exactly the elements inside the dataset, so no
//! padding bytes ever hit the disk.

use crate::error::Mh5Error;
use crate::{Result, MAX_RANK};

/// A dataset or chunk shape: rank 1..=4, no zero extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Build a shape from a slice of extents.
    pub fn new(dims: &[usize]) -> Result<Shape> {
        if dims.is_empty() || dims.len() > MAX_RANK {
            return Err(Mh5Error::BadShape(format!(
                "rank {} outside supported range 1..={MAX_RANK}",
                dims.len()
            )));
        }
        if let Some(_zero) = dims.iter().position(|&d| d == 0) {
            return Err(Mh5Error::BadShape(format!("zero extent in shape {dims:?}")));
        }
        // Guard against overflow in element counts.
        let mut n: usize = 1;
        for &d in dims {
            n = n
                .checked_mul(d)
                .ok_or_else(|| Mh5Error::BadShape(format!("shape {dims:?} overflows usize")))?;
        }
        let mut a = [1usize; MAX_RANK];
        a[..dims.len()].copy_from_slice(dims);
        Ok(Shape {
            dims: a,
            rank: dims.len(),
        })
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The extents, one per axis.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Total number of elements.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut s = [1usize; MAX_RANK];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.dims[i + 1];
        }
        s
    }

    /// Linear (row-major) index of a coordinate.
    pub fn linear_index(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.rank);
        let s = self.strides();
        coords.iter().zip(s.iter()).map(|(&c, &st)| c * st).sum()
    }
}

/// A dataset shape plus its chunk shape; provides the chunk-grid arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunking {
    /// Full dataset shape.
    pub shape: Shape,
    /// Nominal chunk shape (edge chunks are clipped).
    pub chunk: Shape,
}

impl Chunking {
    /// Validate that `chunk` has the same rank as `shape` and no axis larger
    /// than the dataset.
    pub fn new(shape: Shape, chunk: Shape) -> Result<Chunking> {
        if shape.rank() != chunk.rank() {
            return Err(Mh5Error::BadShape(format!(
                "chunk rank {} != dataset rank {}",
                chunk.rank(),
                shape.rank()
            )));
        }
        for (axis, (&c, &s)) in chunk.dims().iter().zip(shape.dims()).enumerate() {
            if c > s {
                return Err(Mh5Error::BadShape(format!(
                    "chunk extent {c} exceeds dataset extent {s} on axis {axis}"
                )));
            }
        }
        Ok(Chunking { shape, chunk })
    }

    /// Chunks per axis.
    pub fn grid_dims(&self) -> [usize; MAX_RANK] {
        let mut g = [1usize; MAX_RANK];
        for (i, slot) in g.iter_mut().enumerate().take(self.shape.rank()) {
            *slot = self.shape.dims()[i].div_ceil(self.chunk.dims()[i]);
        }
        g
    }

    /// Total number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.grid_dims()[..self.shape.rank()].iter().product()
    }

    /// Chunk-grid coordinates of chunk `index` (row-major over the grid).
    pub fn chunk_coords(&self, index: usize) -> [usize; MAX_RANK] {
        let g = self.grid_dims();
        let rank = self.shape.rank();
        let mut rem = index;
        let mut coords = [0usize; MAX_RANK];
        for i in (0..rank).rev() {
            coords[i] = rem % g[i];
            rem /= g[i];
        }
        debug_assert_eq!(rem, 0, "chunk index out of range");
        coords
    }

    /// Linear chunk index from grid coordinates.
    pub fn chunk_index(&self, coords: &[usize]) -> usize {
        let g = self.grid_dims();
        let rank = self.shape.rank();
        let mut idx = 0usize;
        for i in 0..rank {
            debug_assert!(coords[i] < g[i]);
            idx = idx * g[i] + coords[i];
        }
        idx
    }

    /// Dataset coordinates of the first element of a chunk.
    pub fn chunk_origin(&self, coords: &[usize]) -> [usize; MAX_RANK] {
        let mut o = [0usize; MAX_RANK];
        for i in 0..self.shape.rank() {
            o[i] = coords[i] * self.chunk.dims()[i];
        }
        o
    }

    /// Actual (clipped) extent of a chunk.
    pub fn chunk_extent(&self, coords: &[usize]) -> [usize; MAX_RANK] {
        let mut e = [1usize; MAX_RANK];
        for i in 0..self.shape.rank() {
            let start = coords[i] * self.chunk.dims()[i];
            e[i] = self.chunk.dims()[i].min(self.shape.dims()[i] - start);
        }
        e
    }

    /// Number of elements in a (clipped) chunk.
    pub fn chunk_elements(&self, index: usize) -> usize {
        let coords = self.chunk_coords(index);
        self.chunk_extent(&coords)[..self.shape.rank()]
            .iter()
            .product()
    }

    /// Validate a hyperslab selection against the dataset bounds.
    pub fn validate_selection(&self, offset: &[usize], count: &[usize]) -> Result<()> {
        let rank = self.shape.rank();
        if offset.len() != rank || count.len() != rank {
            return Err(Mh5Error::BadShape(format!(
                "selection rank {}/{} != dataset rank {rank}",
                offset.len(),
                count.len()
            )));
        }
        for axis in 0..rank {
            if count[axis] == 0 {
                return Err(Mh5Error::BadShape(format!("zero count on axis {axis}")));
            }
            let end = offset[axis].checked_add(count[axis]);
            if end.is_none() || end.unwrap() > self.shape.dims()[axis] {
                return Err(Mh5Error::SelectionOutOfBounds {
                    axis,
                    offset: offset[axis],
                    count: count[axis],
                    extent: self.shape.dims()[axis],
                });
            }
        }
        Ok(())
    }

    /// Visit every chunk intersecting the hyperslab `offset/count`.
    ///
    /// For each intersection the callback receives the chunk's linear index
    /// and the intersection box described three ways:
    /// * `in_chunk` — box origin in chunk-local coordinates,
    /// * `in_slab` — box origin in selection-local coordinates,
    /// * `extent` — box extents.
    pub fn for_each_intersecting_chunk<F>(
        &self,
        offset: &[usize],
        count: &[usize],
        mut f: F,
    ) -> Result<()>
    where
        F: FnMut(usize, &[usize], &[usize], &[usize]) -> Result<()>,
    {
        self.validate_selection(offset, count)?;
        let rank = self.shape.rank();
        let chunk_dims = self.chunk.dims();
        // Chunk-grid range intersecting the slab per axis.
        let mut first = [0usize; MAX_RANK];
        let mut last = [0usize; MAX_RANK]; // inclusive
        for i in 0..rank {
            first[i] = offset[i] / chunk_dims[i];
            last[i] = (offset[i] + count[i] - 1) / chunk_dims[i];
        }
        // Odometer over the chunk sub-grid.
        let mut cur = first;
        loop {
            let coords = &cur[..rank];
            let origin = self.chunk_origin(coords);
            let ext = self.chunk_extent(coords);
            let mut in_chunk = [0usize; MAX_RANK];
            let mut in_slab = [0usize; MAX_RANK];
            let mut box_ext = [1usize; MAX_RANK];
            for i in 0..rank {
                let lo = offset[i].max(origin[i]);
                let hi = (offset[i] + count[i]).min(origin[i] + ext[i]);
                debug_assert!(lo < hi);
                in_chunk[i] = lo - origin[i];
                in_slab[i] = lo - offset[i];
                box_ext[i] = hi - lo;
            }
            f(
                self.chunk_index(coords),
                &in_chunk[..rank],
                &in_slab[..rank],
                &box_ext[..rank],
            )?;
            // Advance odometer.
            let mut axis = rank;
            loop {
                if axis == 0 {
                    return Ok(());
                }
                axis -= 1;
                if cur[axis] < last[axis] {
                    cur[axis] += 1;
                    cur[(axis + 1)..rank].copy_from_slice(&first[(axis + 1)..rank]);
                    break;
                }
            }
        }
    }
}

/// Copy an n-D box between two row-major byte buffers.
///
/// `src_shape`/`dst_shape` are element extents of the buffers; the box of
/// `extent` elements is read starting at `src_origin` and written starting at
/// `dst_origin`. The innermost axis is copied with `copy_from_slice`.
#[allow(clippy::too_many_arguments)]
pub fn copy_box(
    src: &[u8],
    src_shape: &[usize],
    src_origin: &[usize],
    dst: &mut [u8],
    dst_shape: &[usize],
    dst_origin: &[usize],
    extent: &[usize],
    elem_size: usize,
) {
    let rank = extent.len();
    debug_assert_eq!(src_shape.len(), rank);
    debug_assert_eq!(dst_shape.len(), rank);
    // Row-major strides in elements.
    let strides = |shape: &[usize]| {
        let mut s = [1usize; MAX_RANK];
        for i in (0..rank.saturating_sub(1)).rev() {
            s[i] = s[i + 1] * shape[i + 1];
        }
        s
    };
    let ss = strides(src_shape);
    let ds = strides(dst_shape);
    let row = extent[rank - 1] * elem_size;
    // Odometer over all axes but the last.
    let mut idx = [0usize; MAX_RANK];
    loop {
        let mut so = 0usize;
        let mut dof = 0usize;
        for i in 0..rank {
            let off = if i < rank - 1 { idx[i] } else { 0 };
            so += (src_origin[i] + off) * ss[i];
            dof += (dst_origin[i] + off) * ds[i];
        }
        let so = so * elem_size;
        let dof = dof * elem_size;
        dst[dof..dof + row].copy_from_slice(&src[so..so + row]);
        // Advance over axes 0..rank-1.
        let mut axis = rank - 1;
        loop {
            if axis == 0 {
                return;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < extent[axis] {
                break;
            }
            idx[axis] = 0;
            if axis == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(Shape::new(&[]).is_err());
        assert!(Shape::new(&[1, 2, 3, 4, 5]).is_err());
        assert!(Shape::new(&[3, 0, 2]).is_err());
        let s = Shape::new(&[4, 6, 9]).unwrap();
        assert_eq!(s.rank(), 3);
        assert_eq!(s.n_elements(), 216);
        assert_eq!(&s.strides()[..3], &[54, 9, 1]);
        assert_eq!(s.linear_index(&[1, 2, 3]), 54 + 18 + 3);
    }

    #[test]
    fn shape_overflow_rejected() {
        assert!(Shape::new(&[usize::MAX, 2]).is_err());
    }

    #[test]
    fn chunk_grid_arithmetic() {
        // 4 images × 6 rows × 9 cols, chunked (1, 2, 9): Fig 2 of the paper.
        let ck = Chunking::new(
            Shape::new(&[4, 6, 9]).unwrap(),
            Shape::new(&[1, 2, 9]).unwrap(),
        )
        .unwrap();
        assert_eq!(&ck.grid_dims()[..3], &[4, 3, 1]);
        assert_eq!(ck.n_chunks(), 12);
        for i in 0..12 {
            let c = ck.chunk_coords(i);
            assert_eq!(ck.chunk_index(&c[..3]), i);
            assert_eq!(ck.chunk_elements(i), 18);
        }
    }

    #[test]
    fn edge_chunks_are_clipped() {
        let ck = Chunking::new(Shape::new(&[5, 7]).unwrap(), Shape::new(&[2, 3]).unwrap()).unwrap();
        assert_eq!(&ck.grid_dims()[..2], &[3, 3]);
        // Bottom-right chunk is 1×1.
        let coords = [2usize, 2usize];
        assert_eq!(&ck.chunk_extent(&coords)[..2], &[1, 1]);
        assert_eq!(&ck.chunk_origin(&coords)[..2], &[4, 6]);
        let total: usize = (0..ck.n_chunks()).map(|i| ck.chunk_elements(i)).sum();
        assert_eq!(total, 35);
    }

    #[test]
    fn chunk_larger_than_dataset_rejected() {
        assert!(Chunking::new(Shape::new(&[4]).unwrap(), Shape::new(&[5]).unwrap()).is_err());
        assert!(
            Chunking::new(Shape::new(&[4, 4]).unwrap(), Shape::new(&[4]).unwrap()).is_err(),
            "rank mismatch"
        );
    }

    #[test]
    fn selection_validation() {
        let ck = Chunking::new(Shape::new(&[4, 6]).unwrap(), Shape::new(&[2, 2]).unwrap()).unwrap();
        assert!(ck.validate_selection(&[0, 0], &[4, 6]).is_ok());
        assert!(ck.validate_selection(&[3, 5], &[1, 1]).is_ok());
        assert!(matches!(
            ck.validate_selection(&[3, 5], &[1, 2]),
            Err(Mh5Error::SelectionOutOfBounds { axis: 1, .. })
        ));
        assert!(ck.validate_selection(&[0, 0], &[0, 1]).is_err());
        assert!(ck.validate_selection(&[0], &[1]).is_err());
    }

    #[test]
    fn intersection_visitor_covers_selection_exactly() {
        let ck = Chunking::new(
            Shape::new(&[4, 6, 9]).unwrap(),
            Shape::new(&[1, 2, 4]).unwrap(),
        )
        .unwrap();
        let offset = [1usize, 1, 2];
        let count = [2usize, 4, 6];
        let mut covered = vec![false; count.iter().product()];
        ck.for_each_intersecting_chunk(&offset, &count, |_idx, _in_chunk, in_slab, ext| {
            for a in 0..ext[0] {
                for b in 0..ext[1] {
                    for c in 0..ext[2] {
                        let lin = ((in_slab[0] + a) * count[1] + (in_slab[1] + b)) * count[2]
                            + (in_slab[2] + c);
                        assert!(!covered[lin], "element covered twice");
                        covered[lin] = true;
                    }
                }
            }
            Ok(())
        })
        .unwrap();
        assert!(
            covered.iter().all(|&c| c),
            "every selected element visited exactly once"
        );
    }

    #[test]
    fn copy_box_2d() {
        // 4×5 source, copy middle 2×3 box into a 3×3 dest at (1,0).
        let src: Vec<u8> = (0..20).collect();
        let mut dst = vec![0u8; 9];
        copy_box(
            &src,
            &[4, 5],
            &[1, 1],
            &mut dst,
            &[3, 3],
            &[1, 0],
            &[2, 3],
            1,
        );
        assert_eq!(dst, vec![0, 0, 0, 6, 7, 8, 11, 12, 13]);
    }

    #[test]
    fn copy_box_respects_element_size() {
        let src: Vec<u8> = (0..32).collect(); // 4×2 of u32
        let mut dst = vec![0u8; 16]; // 2×2 of u32
        copy_box(
            &src,
            &[4, 2],
            &[2, 0],
            &mut dst,
            &[2, 2],
            &[0, 0],
            &[2, 2],
            4,
        );
        assert_eq!(&dst[..], &src[16..32]);
    }

    #[test]
    fn copy_box_1d_and_3d() {
        let src: Vec<u8> = (0..24).collect();
        let mut dst = vec![0u8; 4];
        copy_box(&src, &[24], &[10], &mut dst, &[4], &[0], &[4], 1);
        assert_eq!(dst, vec![10, 11, 12, 13]);

        // 2×3×4 source → extract the (z=1) 1×2×2 corner box.
        let mut dst = vec![0u8; 4];
        copy_box(
            &src,
            &[2, 3, 4],
            &[1, 1, 2],
            &mut dst,
            &[1, 2, 2],
            &[0, 0, 0],
            &[1, 2, 2],
            1,
        );
        assert_eq!(dst, vec![18, 19, 22, 23]);
    }
}
