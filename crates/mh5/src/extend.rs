//! Extendable datasets: append-along-axis-0 writing.
//!
//! Beamline acquisition produces one detector image per wire step without
//! knowing up front how many steps a scan will have (scans get aborted and
//! resumed). HDF5 models this with unlimited dimensions; mh5 models the
//! useful subset: a dataset whose axis 0 grows one *slice* at a time, with
//! chunk axis 0 fixed at 1, finalized to an ordinary dataset on
//! [`crate::FileWriter::finish`].
//!
//! The reader needs no changes — an extended dataset is indistinguishable
//! from one written with a known shape.

use crate::dtype::{Dtype, Element};
use crate::error::Mh5Error;
use crate::meta::ObjectId;
use crate::shape::{Chunking, Shape};
use crate::writer::FileWriter;
use crate::Result;

/// Writer-side state of one growing dataset.
#[derive(Debug)]
pub(crate) struct ExtendableState {
    pub dataset: ObjectId,
    pub dtype: Dtype,
    /// Shape of one axis-0 slice (rank = dataset rank − 1).
    pub slice_shape: Vec<usize>,
    /// Chunking of one slice.
    pub slice_chunking: Chunking,
    /// Slices appended so far.
    pub n_slices: usize,
}

impl ExtendableState {
    pub fn elements_per_slice(&self) -> usize {
        self.slice_shape.iter().product()
    }
}

impl FileWriter {
    /// Create a dataset whose axis 0 grows by [`append_slice`]
    /// (`FileWriter::append_slice`). `slice_shape` / `slice_chunk` describe
    /// one axis-0 slice (so the final dataset has rank
    /// `slice_shape.len() + 1` and chunk shape `(1, slice_chunk…)`).
    pub fn create_extendable_dataset(
        &mut self,
        parent: ObjectId,
        name: &str,
        dtype: Dtype,
        slice_shape: &[usize],
        slice_chunk: &[usize],
    ) -> Result<ObjectId> {
        if slice_shape.len() + 1 > crate::MAX_RANK {
            return Err(Mh5Error::BadShape(format!(
                "slice rank {} leaves no room for the growth axis",
                slice_shape.len()
            )));
        }
        let slice_chunking = Chunking::new(Shape::new(slice_shape)?, Shape::new(slice_chunk)?)?;
        // Create as a 1-slice dataset; the real shape is patched at finish.
        let mut shape = Vec::with_capacity(slice_shape.len() + 1);
        shape.push(1usize);
        shape.extend_from_slice(slice_shape);
        let mut chunk = Vec::with_capacity(slice_chunk.len() + 1);
        chunk.push(1usize);
        chunk.extend_from_slice(slice_chunk);
        let id = self.create_dataset(parent, name, dtype, &shape, &chunk)?;
        self.register_extendable(ExtendableState {
            dataset: id,
            dtype,
            slice_shape: slice_shape.to_vec(),
            slice_chunking,
            n_slices: 0,
        });
        Ok(id)
    }

    /// Append one axis-0 slice (`data.len()` must equal the slice element
    /// count). Returns the index of the new slice.
    pub fn append_slice<T: Element>(&mut self, ds: ObjectId, data: &[T]) -> Result<usize> {
        let state = self
            .extendable_mut(ds)
            .ok_or_else(|| Mh5Error::WriterState("dataset is not extendable".into()))?;
        if T::DTYPE != state.dtype {
            let expected = T::DTYPE.name();
            let actual = state.dtype.name();
            return Err(Mh5Error::TypeMismatch { expected, actual });
        }
        let per_slice = state.elements_per_slice();
        if data.len() != per_slice {
            return Err(Mh5Error::LengthMismatch {
                expected: per_slice,
                actual: data.len(),
            });
        }
        let slice_idx = state.n_slices;
        state.n_slices += 1;
        let chunking = state.slice_chunking;
        let rank = chunking.shape.rank();
        let n_chunks = chunking.n_chunks();
        // Write each chunk of this slice through the raw chunk writer; the
        // pending directory is grown on demand.
        self.reserve_extendable_chunks(ds, (slice_idx + 1) * n_chunks)?;
        let elem = T::DTYPE.size();
        let bytes = crate::dtype::encode_slice(data);
        let mut chunk_buf: Vec<u8> = Vec::new();
        for ci in 0..n_chunks {
            let coords = chunking.chunk_coords(ci);
            let origin = chunking.chunk_origin(&coords[..rank]);
            let extent = chunking.chunk_extent(&coords[..rank]);
            let n: usize = extent[..rank].iter().product();
            chunk_buf.clear();
            chunk_buf.resize(n * elem, 0);
            crate::shape::copy_box(
                &bytes,
                chunking.shape.dims(),
                &origin[..rank],
                &mut chunk_buf,
                &extent[..rank],
                &vec![0; rank],
                &extent[..rank],
                elem,
            );
            let decoded: Vec<T> = crate::dtype::decode_slice(&chunk_buf)?;
            self.write_chunk(ds, slice_idx * n_chunks + ci, &decoded)?;
        }
        Ok(slice_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::FileReader;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mh5_extend_{}_{name}.mh5", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_read_back() {
        let path = tmp("basic");
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_extendable_dataset(FileWriter::ROOT, "images", Dtype::U16, &[3, 4], &[2, 4])
            .unwrap();
        let mut expect = Vec::new();
        for s in 0..5u16 {
            let slice: Vec<u16> = (0..12).map(|i| s * 100 + i).collect();
            assert_eq!(w.append_slice(ds, &slice).unwrap(), s as usize);
            expect.extend_from_slice(&slice);
        }
        w.finish().unwrap();

        let r = FileReader::open(&path).unwrap();
        let ds = r.resolve_path("/images").unwrap();
        let info = r.dataset_info(ds).unwrap();
        assert_eq!(info.shape, vec![5, 3, 4]);
        assert_eq!(info.chunk_shape, vec![1, 2, 4]);
        let all: Vec<u16> = r.read_all(ds).unwrap();
        assert_eq!(all, expect);
        // Hyperslabs across the grown axis work like any dataset.
        let mid: Vec<u16> = r.read_hyperslab(ds, &[1, 1, 0], &[3, 2, 4]).unwrap();
        assert_eq!(mid.len(), 24);
        assert_eq!(mid[0], expect[(3 + 1) * 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_slice_length_rejected() {
        let path = tmp("len");
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_extendable_dataset(FileWriter::ROOT, "d", Dtype::F64, &[4], &[2])
            .unwrap();
        assert!(matches!(
            w.append_slice(ds, &[1.0f64, 2.0]),
            Err(Mh5Error::LengthMismatch {
                expected: 4,
                actual: 2
            })
        ));
        assert!(matches!(
            w.append_slice(ds, &[1u16, 2, 3, 4]),
            Err(Mh5Error::TypeMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appending_to_ordinary_dataset_rejected() {
        let path = tmp("ordinary");
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::F64, &[4], &[2])
            .unwrap();
        assert!(matches!(
            w.append_slice(ds, &[1.0f64, 2.0, 3.0, 4.0]),
            Err(Mh5Error::WriterState(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_slices_is_a_finish_error() {
        let path = tmp("empty");
        let mut w = FileWriter::create(&path).unwrap();
        let _ds = w
            .create_extendable_dataset(FileWriter::ROOT, "d", Dtype::U8, &[4], &[4])
            .unwrap();
        assert!(matches!(w.finish(), Err(Mh5Error::WriterState(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rank_limit_enforced() {
        let path = tmp("rank");
        let mut w = FileWriter::create(&path).unwrap();
        assert!(w
            .create_extendable_dataset(
                FileWriter::ROOT,
                "d",
                Dtype::U8,
                &[2, 2, 2, 2],
                &[1, 1, 1, 1]
            )
            .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_chunks_in_slices_round_trip() {
        // Slice 5 wide, chunk 2 wide → clipped edge chunk per slice.
        let path = tmp("edges");
        let mut w = FileWriter::create(&path).unwrap();
        let ds = w
            .create_extendable_dataset(FileWriter::ROOT, "d", Dtype::I32, &[5], &[2])
            .unwrap();
        w.append_slice(ds, &[1i32, 2, 3, 4, 5]).unwrap();
        w.append_slice(ds, &[-1i32, -2, -3, -4, -5]).unwrap();
        w.finish().unwrap();
        let r = FileReader::open(&path).unwrap();
        let all: Vec<i32> = r.read_all(r.resolve_path("/d").unwrap()).unwrap();
        assert_eq!(all, vec![1, 2, 3, 4, 5, -1, -2, -3, -4, -5]);
        std::fs::remove_file(&path).ok();
    }
}
