//! Writing mh5 files.
//!
//! The writer streams chunk payloads to disk as they arrive and keeps only
//! metadata in memory; the metadata block and header back-patch happen in
//! [`FileWriter::finish`]. Datasets may be written wholesale
//! ([`write_all`](FileWriter::write_all)) or chunk by chunk
//! ([`write_chunk`](FileWriter::write_chunk)) for generators that produce
//! one image at a time.
//!
//! Writes are crash-safe: everything goes to `<path>.tmp`, and only
//! [`FileWriter::finish`] — after a flush and fsync — atomically renames the
//! temporary into place. An interrupted export therefore never leaves a
//! truncated or headerless file at the destination; at worst a stale `.tmp`
//! remains (and a writer dropped without finishing removes it).

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::attr::AttrValue;
use crate::codec::{encode_chunk, Codec};
use crate::crc::crc32;
use crate::dtype::{encode_slice, Dtype, Element};
use crate::error::Mh5Error;
use crate::extend::ExtendableState;
use crate::meta::{validate_name, ChunkEntry, DatasetMeta, Object, ObjectId, ObjectTable, Payload};
use crate::shape::{copy_box, Chunking, Shape};
use crate::{Result, FORMAT_VERSION, HEADER_LEN, MAGIC};

/// Streaming writer for an mh5 file.
#[derive(Debug)]
pub struct FileWriter {
    out: BufWriter<File>,
    /// Where the bytes actually go until `finish` renames them into place.
    tmp_path: PathBuf,
    /// The destination the caller asked for.
    final_path: PathBuf,
    table: ObjectTable,
    /// Per-dataset chunk directories being filled (`None` = not yet written).
    pending: Vec<Option<Vec<Option<ChunkEntry>>>>,
    /// Preferred codec per dataset.
    codecs: Vec<Codec>,
    /// Growing datasets (see [`crate::extend`]).
    extendables: Vec<ExtendableState>,
    /// Next payload byte goes here.
    offset: u64,
    finished: bool,
}

impl FileWriter {
    /// The root group of every file.
    pub const ROOT: ObjectId = ObjectId(0);

    /// Open a writer targeting `path`. Bytes stream into `<path>.tmp` —
    /// the destination itself is untouched until [`FileWriter::finish`]
    /// renames the completed file into place.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<FileWriter> {
        let final_path = path.as_ref().to_path_buf();
        let file_name = final_path
            .file_name()
            .ok_or_else(|| Mh5Error::WriterState("path has no file name".into()))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp_path = final_path.with_file_name(tmp_name);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?; // metadata offset, patched later
        out.write_all(&0u64.to_le_bytes())?; // metadata length
        out.write_all(&0u64.to_le_bytes())?; // file length
        out.flush()?;
        Ok(FileWriter {
            out,
            tmp_path,
            final_path,
            table: ObjectTable::with_root(),
            pending: vec![None],
            codecs: vec![Codec::Raw],
            extendables: Vec::new(),
            offset: HEADER_LEN,
            finished: false,
        })
    }

    fn check_open(&self) -> Result<()> {
        if self.finished {
            return Err(Mh5Error::WriterState("writer already finished".into()));
        }
        Ok(())
    }

    fn add_child(&mut self, parent: ObjectId, name: &str, payload: Payload) -> Result<ObjectId> {
        validate_name(name)?;
        if self.table.child(parent, name)?.is_some() {
            return Err(Mh5Error::DuplicateName(name.to_string()));
        }
        let id = ObjectId(self.table.objects.len() as u32);
        self.table.objects.push(Object {
            name: name.to_string(),
            attrs: Vec::new(),
            payload,
        });
        match &mut self.table.get_mut(parent)?.payload {
            Payload::Group { children } => children.push(id.0),
            Payload::Dataset(_) => {
                // `child` above already rejected datasets; defensive.
                return Err(Mh5Error::WrongKind {
                    path: name.to_string(),
                    expected: "group",
                });
            }
        }
        Ok(id)
    }

    /// Create a group under `parent`.
    pub fn create_group(&mut self, parent: ObjectId, name: &str) -> Result<ObjectId> {
        self.check_open()?;
        let id = self.add_child(
            parent,
            name,
            Payload::Group {
                children: Vec::new(),
            },
        )?;
        self.pending.push(None);
        self.codecs.push(Codec::Raw);
        Ok(id)
    }

    /// Create a dataset under `parent` with raw (uncompressed) chunks.
    pub fn create_dataset(
        &mut self,
        parent: ObjectId,
        name: &str,
        dtype: Dtype,
        shape: &[usize],
        chunk_shape: &[usize],
    ) -> Result<ObjectId> {
        self.create_dataset_with_codec(parent, name, dtype, shape, chunk_shape, Codec::Raw)
    }

    /// Create a dataset choosing the preferred chunk codec. With
    /// [`Codec::Rle`], each chunk falls back to raw storage when RLE does not
    /// shrink it.
    pub fn create_dataset_with_codec(
        &mut self,
        parent: ObjectId,
        name: &str,
        dtype: Dtype,
        shape: &[usize],
        chunk_shape: &[usize],
        codec: Codec,
    ) -> Result<ObjectId> {
        self.check_open()?;
        let chunking = Chunking::new(Shape::new(shape)?, Shape::new(chunk_shape)?)?;
        let n_chunks = chunking.n_chunks();
        let id = self.add_child(
            parent,
            name,
            Payload::Dataset(DatasetMeta {
                dtype,
                chunking,
                chunks: Vec::new(),
            }),
        )?;
        self.pending.push(Some(vec![None; n_chunks]));
        self.codecs.push(codec);
        Ok(id)
    }

    /// Set (or replace) an attribute on any object.
    pub fn set_attr(&mut self, obj: ObjectId, name: &str, value: AttrValue) -> Result<()> {
        self.check_open()?;
        validate_name(name)?;
        let o = self.table.get_mut(obj)?;
        if let Some(slot) = o.attrs.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            o.attrs.push((name.to_string(), value));
        }
        Ok(())
    }

    pub(crate) fn register_extendable(&mut self, state: ExtendableState) {
        self.extendables.push(state);
    }

    pub(crate) fn extendable_mut(&mut self, ds: ObjectId) -> Option<&mut ExtendableState> {
        self.extendables.iter_mut().find(|e| e.dataset == ds)
    }

    /// Grow an extendable dataset's pending chunk directory to `total`.
    pub(crate) fn reserve_extendable_chunks(&mut self, ds: ObjectId, total: usize) -> Result<()> {
        let dir = self.pending[ds.index()]
            .as_mut()
            .ok_or_else(|| Mh5Error::WriterState("not a dataset".into()))?;
        if dir.len() < total {
            dir.resize(total, None);
        }
        // Patch the recorded shape so write_chunk's bounds checks see the
        // grown axis.
        let state_slices = self
            .extendables
            .iter()
            .find(|e| e.dataset == ds)
            .map(|e| e.n_slices)
            .unwrap_or(0);
        if let Payload::Dataset(meta) = &mut self.table.get_mut(ds)?.payload {
            let mut shape = meta.chunking.shape.dims().to_vec();
            shape[0] = state_slices.max(1);
            let chunk = meta.chunking.chunk.dims().to_vec();
            meta.chunking = Chunking::new(Shape::new(&shape)?, Shape::new(&chunk)?)?;
        }
        Ok(())
    }

    fn dataset_meta(&self, ds: ObjectId) -> Result<&DatasetMeta> {
        match &self.table.get(ds)?.payload {
            Payload::Dataset(m) => Ok(m),
            Payload::Group { .. } => Err(Mh5Error::WrongKind {
                path: self.table.get(ds)?.name.clone(),
                expected: "dataset",
            }),
        }
    }

    /// Write one chunk (by linear chunk index) of a dataset. `data` must
    /// contain exactly the chunk's (clipped) elements in row-major order.
    pub fn write_chunk<T: Element>(
        &mut self,
        ds: ObjectId,
        chunk_index: usize,
        data: &[T],
    ) -> Result<()> {
        self.check_open()?;
        let meta = self.dataset_meta(ds)?;
        if T::DTYPE != meta.dtype {
            return Err(Mh5Error::TypeMismatch {
                expected: T::DTYPE.name(),
                actual: meta.dtype.name(),
            });
        }
        let n_chunks = meta.chunking.n_chunks();
        if chunk_index >= n_chunks {
            return Err(Mh5Error::BadShape(format!(
                "chunk index {chunk_index} outside directory of {n_chunks}"
            )));
        }
        let expected = meta.chunking.chunk_elements(chunk_index);
        if data.len() != expected {
            return Err(Mh5Error::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        let raw = encode_slice(data);
        let prefer = self.codecs[ds.index()];
        let (payload, codec) = encode_chunk(&raw, prefer);
        let entry = ChunkEntry {
            offset: self.offset,
            stored_len: payload.len() as u64,
            raw_len: raw.len() as u64,
            codec,
            checksum: crc32(&payload),
        };
        let slot = self.pending[ds.index()]
            .as_mut()
            .expect("dataset always has a pending directory");
        if slot[chunk_index].is_some() {
            return Err(Mh5Error::WriterState(format!(
                "chunk {chunk_index} written twice"
            )));
        }
        self.out.write_all(&payload)?;
        self.offset += payload.len() as u64;
        slot[chunk_index] = Some(entry);
        Ok(())
    }

    /// Write a whole dataset at once; `data` is the full row-major array.
    pub fn write_all<T: Element>(&mut self, ds: ObjectId, data: &[T]) -> Result<()> {
        self.check_open()?;
        let meta = self.dataset_meta(ds)?;
        let chunking = meta.chunking;
        let n_elements = chunking.shape.n_elements();
        if data.len() != n_elements {
            return Err(Mh5Error::LengthMismatch {
                expected: n_elements,
                actual: data.len(),
            });
        }
        let rank = chunking.shape.rank();
        let elem = T::DTYPE.size();
        let bytes = encode_slice(data);
        let mut chunk_buf: Vec<u8> = Vec::new();
        for ci in 0..chunking.n_chunks() {
            let coords = chunking.chunk_coords(ci);
            let origin = chunking.chunk_origin(&coords[..rank]);
            let extent = chunking.chunk_extent(&coords[..rank]);
            let n: usize = extent[..rank].iter().product();
            chunk_buf.clear();
            chunk_buf.resize(n * elem, 0);
            copy_box(
                &bytes,
                chunking.shape.dims(),
                &origin[..rank],
                &mut chunk_buf,
                &extent[..rank],
                &vec![0; rank],
                &extent[..rank],
                elem,
            );
            let decoded: Vec<T> = crate::dtype::decode_slice(&chunk_buf)?;
            self.write_chunk(ds, ci, &decoded)?;
        }
        Ok(())
    }

    /// Finish the file: verify every dataset is complete, append the
    /// CRC-protected metadata block, patch the header, fsync, and
    /// atomically rename the temporary into the destination. The
    /// destination either keeps its old content or gains the complete new
    /// file — never anything in between.
    pub fn finish(mut self) -> Result<()> {
        self.check_open()?;
        // Finalize extendable datasets: at least one slice, shape patched.
        for state in &self.extendables {
            if state.n_slices == 0 {
                let name = self.table.get(state.dataset)?.name.clone();
                return Err(Mh5Error::WriterState(format!(
                    "extendable dataset {name:?} never received a slice"
                )));
            }
        }
        // Move pending chunk directories into the table, verifying coverage.
        for (idx, pending) in self.pending.iter_mut().enumerate() {
            if let Some(dir) = pending.take() {
                let name = self.table.objects[idx].name.clone();
                let mut chunks = Vec::with_capacity(dir.len());
                for (ci, e) in dir.into_iter().enumerate() {
                    match e {
                        Some(e) => chunks.push(e),
                        None => {
                            return Err(Mh5Error::WriterState(format!(
                                "dataset {name:?} chunk {ci} never written"
                            )))
                        }
                    }
                }
                if let Payload::Dataset(meta) = &mut self.table.objects[idx].payload {
                    meta.chunks = chunks;
                }
            }
        }
        let body = self.table.encode();
        let crc = crc32(&body);
        let meta_offset = self.offset;
        let meta_len = 4 + body.len() as u64;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&body)?;
        let file_len = meta_offset + meta_len;
        // Patch the header.
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(12))?;
        file.write_all(&meta_offset.to_le_bytes())?;
        file.write_all(&meta_len.to_le_bytes())?;
        file.write_all(&file_len.to_le_bytes())?;
        file.flush()?;
        // Durability before visibility: the temporary's bytes must be on
        // disk before the rename makes them the destination.
        file.sync_all()?;
        fs::rename(&self.tmp_path, &self.final_path)?;
        // Persist the rename itself (best effort — not all platforms allow
        // opening a directory for sync).
        if let Some(parent) = self.final_path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        self.finished = true;
        Ok(())
    }
}

impl Drop for FileWriter {
    fn drop(&mut self) {
        // An unfinished writer (abandoned or errored) leaves the
        // destination untouched; clean up its temporary.
        if !self.finished {
            let _ = fs::remove_file(&self.tmp_path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mh5_writer_{}_{name}.mh5", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn header_is_written_up_front() {
        let p = tmp("header");
        let tmp_file =
            p.with_file_name(format!("{}.tmp", p.file_name().unwrap().to_string_lossy()));
        let w = FileWriter::create(&p).unwrap();
        // The in-flight bytes live in the temporary, header first...
        let bytes = std::fs::read(&tmp_file).unwrap();
        assert!(bytes.len() >= HEADER_LEN as usize);
        assert_eq!(&bytes[..8], &MAGIC);
        // ...while the destination stays untouched until `finish`.
        assert!(!p.exists(), "destination must not exist mid-write");
        drop(w);
        assert!(
            !tmp_file.exists(),
            "abandoned writer cleans up its temporary"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn finish_renames_atomically_and_failed_finish_leaves_no_output() {
        let p = tmp("atomic");
        let tmp_file =
            p.with_file_name(format!("{}.tmp", p.file_name().unwrap().to_string_lossy()));

        // A complete write lands at the destination, temporary gone.
        let mut w = FileWriter::create(&p).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U8, &[2], &[2])
            .unwrap();
        w.write_chunk(ds, 0, &[7u8, 9]).unwrap();
        w.finish().unwrap();
        assert!(p.exists());
        assert!(!tmp_file.exists());
        let bytes = std::fs::read(&p).unwrap();
        assert_eq!(&bytes[..8], &MAGIC, "finished file is a valid mh5");

        // A failed finish (incomplete dataset) must not clobber the
        // previously finished file, and must clean its temporary.
        let mut w = FileWriter::create(&p).unwrap();
        w.create_dataset(FileWriter::ROOT, "d", Dtype::U8, &[4], &[2])
            .unwrap();
        assert!(w.finish().is_err());
        assert_eq!(
            std::fs::read(&p).unwrap(),
            bytes,
            "old output survives an interrupted rewrite"
        );
        assert!(!tmp_file.exists());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn duplicate_names_rejected() {
        let p = tmp("dup");
        let mut w = FileWriter::create(&p).unwrap();
        w.create_group(FileWriter::ROOT, "entry").unwrap();
        assert!(matches!(
            w.create_group(FileWriter::ROOT, "entry"),
            Err(Mh5Error::DuplicateName(_))
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn invalid_names_rejected() {
        let p = tmp("names");
        let mut w = FileWriter::create(&p).unwrap();
        assert!(w.create_group(FileWriter::ROOT, "a/b").is_err());
        assert!(w.create_group(FileWriter::ROOT, "").is_err());
        assert!(w.set_attr(FileWriter::ROOT, "", AttrValue::Int(1)).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_dtype_rejected() {
        let p = tmp("dtype");
        let mut w = FileWriter::create(&p).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U16, &[4], &[2])
            .unwrap();
        let bad = [1.0f64, 2.0];
        assert!(matches!(
            w.write_chunk(ds, 0, &bad),
            Err(Mh5Error::TypeMismatch { .. })
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_chunk_length_rejected() {
        let p = tmp("len");
        let mut w = FileWriter::create(&p).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U16, &[5], &[2])
            .unwrap();
        // chunks: [2, 2, 1]
        assert!(w.write_chunk(ds, 0, &[1u16, 2]).is_ok());
        assert!(matches!(
            w.write_chunk(ds, 2, &[1u16, 2]),
            Err(Mh5Error::LengthMismatch {
                expected: 1,
                actual: 2
            })
        ));
        assert!(w.write_chunk(ds, 3, &[1u16]).is_err(), "index out of range");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn double_write_rejected() {
        let p = tmp("double");
        let mut w = FileWriter::create(&p).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U8, &[2], &[2])
            .unwrap();
        w.write_chunk(ds, 0, &[1u8, 2]).unwrap();
        assert!(matches!(
            w.write_chunk(ds, 0, &[1u8, 2]),
            Err(Mh5Error::WriterState(_))
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn finish_requires_complete_datasets() {
        let p = tmp("incomplete");
        let mut w = FileWriter::create(&p).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U8, &[4], &[2])
            .unwrap();
        w.write_chunk(ds, 0, &[1u8, 2]).unwrap();
        assert!(matches!(w.finish(), Err(Mh5Error::WriterState(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn attrs_replace_in_place() {
        let p = tmp("attrs");
        let mut w = FileWriter::create(&p).unwrap();
        w.set_attr(FileWriter::ROOT, "x", AttrValue::Int(1))
            .unwrap();
        w.set_attr(FileWriter::ROOT, "x", AttrValue::Int(2))
            .unwrap();
        assert_eq!(w.table.objects[0].attrs.len(), 1);
        assert_eq!(w.table.objects[0].attrs[0].1, AttrValue::Int(2));
        std::fs::remove_file(&p).ok();
    }
}
