//! `mh5` — a minimal hierarchical scientific data container.
//!
//! The Laue reconstruction pipeline of Yue, Schwarz & Tischler consumes
//! detector image stacks stored in HDF5. This crate is a from-scratch,
//! dependency-free container implementing the *subset of HDF5 semantics the
//! pipeline actually uses*:
//!
//! * a tree of named **groups**;
//! * typed **attributes** (integers, floats, strings, small arrays) on any
//!   object — used for the beamline geometry metadata;
//! * N-dimensional (≤ 4-D) **datasets** of `u8 / u16 / u32 / i32 / f32 / f64`
//!   with **chunked storage** and an optional RLE codec;
//! * **hyperslab reads** (offset + count per axis), so the reconstruction can
//!   stream a few detector rows at a time — exactly the access pattern of the
//!   paper's row-slab GPU pipeline (its Fig. 2);
//! * CRC-protected metadata with explicit corruption/truncation errors.
//!
//! # On-disk layout (version 1, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"MH5F\r\n\x1a\n"
//! 8       4     format version (u32) = 1
//! 12      8     metadata block offset (u64, patched on finish)
//! 20      8     metadata block length (u64)
//! 28      8     total file length     (u64, truncation check)
//! 36      ...   chunk payloads, back to back
//! ...     ...   metadata block: crc32(u32) ‖ serialized object table
//! ```
//!
//! The metadata block is a flat table of objects (object 0 is the root
//! group); each object records its kind, name, attributes, and — for
//! datasets — dtype, shape, chunk shape and the chunk directory
//! `(file offset, stored length, raw length, codec)` in row-major chunk
//! order.
//!
//! # Example
//!
//! ```
//! use mh5::{AttrValue, Dtype, FileReader, FileWriter};
//!
//! let path = std::env::temp_dir().join("mh5_doc_example.mh5");
//! let mut w = FileWriter::create(&path).unwrap();
//! let entry = w.create_group(FileWriter::ROOT, "entry").unwrap();
//! w.set_attr(entry, "beamline", AttrValue::Str("34-ID-E".into())).unwrap();
//! let ds = w
//!     .create_dataset(entry, "images", Dtype::U16, &[4, 8, 8], &[1, 4, 8])
//!     .unwrap();
//! let data: Vec<u16> = (0..4 * 8 * 8).map(|i| i as u16).collect();
//! w.write_all(ds, &data).unwrap();
//! w.finish().unwrap();
//!
//! let r = FileReader::open(&path).unwrap();
//! let ds = r.resolve_path("/entry/images").unwrap();
//! let rows: Vec<u16> = r.read_hyperslab(ds, &[2, 3, 0], &[1, 2, 8]).unwrap();
//! assert_eq!(rows.len(), 16);
//! assert_eq!(rows[0], data[2 * 64 + 3 * 8]);
//! std::fs::remove_file(&path).ok();
//! ```

pub mod attr;
pub mod codec;
pub mod crc;
pub mod dtype;
pub mod error;
pub mod extend;
pub mod meta;
pub mod reader;
pub mod shape;
pub mod tools;
pub mod writer;

pub use attr::AttrValue;
pub use codec::Codec;
pub use dtype::{Dtype, Element};
pub use error::Mh5Error;
pub use meta::{DatasetInfo, ObjectId, ObjectKind};
pub use reader::FileReader;
pub use shape::Shape;
pub use writer::FileWriter;

/// Result alias for mh5 operations.
pub type Result<T> = std::result::Result<T, Mh5Error>;

/// File magic: mirrors the PNG/HDF5 trick of embedding CR LF and EOF bytes to
/// catch text-mode transfer mangling.
pub const MAGIC: [u8; 8] = *b"MH5F\r\n\x1a\n";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size preceding chunk payloads.
pub const HEADER_LEN: u64 = 36;

/// Maximum supported dataset rank.
pub const MAX_RANK: usize = 4;
