//! CRC-32 (IEEE 802.3 polynomial, reflected) for metadata integrity.
//!
//! Table-driven implementation computed at first use; matches the ubiquitous
//! zlib/PNG CRC so the values can be cross-checked with external tools.

/// Lazily initialised 256-entry lookup table for polynomial `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib/PNG test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(77) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 512];
        let base = crc32(&data);
        for pos in [0usize, 100, 511] {
            data[pos] ^= 0x40;
            assert_ne!(crc32(&data), base, "flip at {pos} must change CRC");
            data[pos] ^= 0x40;
        }
    }
}
