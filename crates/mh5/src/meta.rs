//! The in-memory object table and its (de)serialization.
//!
//! The metadata block is a flat, index-addressed table of objects; object 0
//! is always the root group. Children are referenced by index, names are
//! unique within a group.

use crate::attr::AttrValue;
use crate::codec::Codec;
use crate::dtype::Dtype;
use crate::error::Mh5Error;
use crate::shape::{Chunking, Shape};
use crate::Result;

/// Handle to an object (group or dataset) within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId(pub(crate) u32);

impl ObjectId {
    /// Index into the object table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What an object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Group,
    Dataset,
}

/// Directory entry for one stored chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Stored (possibly compressed) payload length.
    pub stored_len: u64,
    /// Decoded payload length.
    pub raw_len: u64,
    /// Codec the payload was stored with.
    pub codec: Codec,
    /// CRC-32 of the stored payload bytes; verified on every read so
    /// payload corruption is caught, not just metadata corruption.
    pub checksum: u32,
}

/// Dataset-specific metadata.
#[derive(Debug, Clone)]
pub struct DatasetMeta {
    pub dtype: Dtype,
    pub chunking: Chunking,
    /// One entry per chunk, row-major over the chunk grid.
    pub chunks: Vec<ChunkEntry>,
}

/// Public, read-only summary of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    pub dtype: Dtype,
    pub shape: Vec<usize>,
    pub chunk_shape: Vec<usize>,
    pub n_chunks: usize,
    /// Total stored bytes (after compression).
    pub stored_bytes: u64,
}

/// One object in the table.
#[derive(Debug, Clone)]
pub struct Object {
    pub name: String,
    pub attrs: Vec<(String, AttrValue)>,
    pub payload: Payload,
}

/// Kind-specific payload of an object.
#[derive(Debug, Clone)]
pub enum Payload {
    Group { children: Vec<u32> },
    Dataset(DatasetMeta),
}

impl Object {
    pub fn kind(&self) -> ObjectKind {
        match self.payload {
            Payload::Group { .. } => ObjectKind::Group,
            Payload::Dataset(_) => ObjectKind::Dataset,
        }
    }
}

/// Validate an object name.
pub fn validate_name(name: &str) -> Result<()> {
    if name.is_empty() || name.contains('/') || name.contains('\0') {
        return Err(Mh5Error::InvalidName(name.to_string()));
    }
    Ok(())
}

/// The whole object table.
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    pub objects: Vec<Object>,
}

impl ObjectTable {
    /// A table containing just the root group.
    pub fn with_root() -> ObjectTable {
        ObjectTable {
            objects: vec![Object {
                name: String::new(),
                attrs: Vec::new(),
                payload: Payload::Group {
                    children: Vec::new(),
                },
            }],
        }
    }

    /// Fetch an object, failing with `Corrupt` on a dangling id.
    pub fn get(&self, id: ObjectId) -> Result<&Object> {
        self.objects
            .get(id.index())
            .ok_or_else(|| Mh5Error::Corrupt(format!("dangling object id {}", id.0)))
    }

    /// Mutable fetch.
    pub fn get_mut(&mut self, id: ObjectId) -> Result<&mut Object> {
        self.objects
            .get_mut(id.index())
            .ok_or_else(|| Mh5Error::Corrupt(format!("dangling object id {}", id.0)))
    }

    /// Look up a child by name within a group.
    pub fn child(&self, group: ObjectId, name: &str) -> Result<Option<ObjectId>> {
        let obj = self.get(group)?;
        let children = match &obj.payload {
            Payload::Group { children } => children,
            Payload::Dataset(_) => {
                return Err(Mh5Error::WrongKind {
                    path: obj.name.clone(),
                    expected: "group",
                })
            }
        };
        for &c in children {
            if self.get(ObjectId(c))?.name == name {
                return Ok(Some(ObjectId(c)));
            }
        }
        Ok(None)
    }

    /// Resolve an absolute `/a/b/c` path from the root.
    pub fn resolve_path(&self, path: &str) -> Result<ObjectId> {
        let mut cur = ObjectId(0);
        for part in path.split('/').filter(|p| !p.is_empty()) {
            cur = self
                .child(cur, part)?
                .ok_or_else(|| Mh5Error::NotFound(path.to_string()))?;
        }
        Ok(cur)
    }

    /// Serialize the table (without the CRC prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.objects.len() * 64);
        out.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for obj in &self.objects {
            match &obj.payload {
                Payload::Group { .. } => out.push(0u8),
                Payload::Dataset(_) => out.push(1u8),
            }
            write_str(&mut out, &obj.name);
            out.extend_from_slice(&(obj.attrs.len() as u32).to_le_bytes());
            for (name, value) in &obj.attrs {
                write_str(&mut out, name);
                value.encode(&mut out);
            }
            match &obj.payload {
                Payload::Group { children } => {
                    out.extend_from_slice(&(children.len() as u32).to_le_bytes());
                    for c in children {
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                }
                Payload::Dataset(ds) => {
                    out.push(ds.dtype.code());
                    let shape = ds.chunking.shape.dims();
                    let chunk = ds.chunking.chunk.dims();
                    out.push(shape.len() as u8);
                    for &d in shape {
                        out.extend_from_slice(&(d as u64).to_le_bytes());
                    }
                    for &d in chunk {
                        out.extend_from_slice(&(d as u64).to_le_bytes());
                    }
                    out.extend_from_slice(&(ds.chunks.len() as u64).to_le_bytes());
                    for e in &ds.chunks {
                        out.extend_from_slice(&e.offset.to_le_bytes());
                        out.extend_from_slice(&e.stored_len.to_le_bytes());
                        out.extend_from_slice(&e.raw_len.to_le_bytes());
                        out.push(e.codec.code());
                        out.extend_from_slice(&e.checksum.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Parse a serialized table, validating internal consistency.
    pub fn decode(data: &[u8]) -> Result<ObjectTable> {
        let mut cur = Cursor::new(data);
        let count = cur.u32()? as usize;
        if count == 0 {
            return Err(Mh5Error::Corrupt("object table is empty (no root)".into()));
        }
        if count > 1 << 24 {
            return Err(Mh5Error::Corrupt(format!(
                "implausible object count {count}"
            )));
        }
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = cur.u8()?;
            let name = cur.string()?;
            let n_attrs = cur.u32()? as usize;
            let mut attrs = Vec::with_capacity(n_attrs.min(1 << 16));
            for _ in 0..n_attrs {
                let aname = cur.string()?;
                let value = AttrValue::decode(&mut cur)?;
                attrs.push((aname, value));
            }
            let payload = match kind {
                0 => {
                    let n_children = cur.u32()? as usize;
                    let mut children = Vec::with_capacity(n_children.min(1 << 20));
                    for _ in 0..n_children {
                        children.push(cur.u32()?);
                    }
                    Payload::Group { children }
                }
                1 => {
                    let dtype = Dtype::from_code(cur.u8()?)?;
                    let rank = cur.u8()? as usize;
                    if rank == 0 || rank > crate::MAX_RANK {
                        return Err(Mh5Error::Corrupt(format!("dataset rank {rank}")));
                    }
                    let mut shape = Vec::with_capacity(rank);
                    for _ in 0..rank {
                        shape.push(cur.u64()? as usize);
                    }
                    let mut chunk = Vec::with_capacity(rank);
                    for _ in 0..rank {
                        chunk.push(cur.u64()? as usize);
                    }
                    let chunking = Chunking::new(Shape::new(&shape)?, Shape::new(&chunk)?)?;
                    let n_chunks = cur.u64()? as usize;
                    if n_chunks != chunking.n_chunks() {
                        return Err(Mh5Error::Corrupt(format!(
                            "chunk directory has {n_chunks} entries, grid needs {}",
                            chunking.n_chunks()
                        )));
                    }
                    let mut chunks = Vec::with_capacity(n_chunks);
                    for _ in 0..n_chunks {
                        let offset = cur.u64()?;
                        let stored_len = cur.u64()?;
                        let raw_len = cur.u64()?;
                        let codec = Codec::from_code(cur.u8()?)?;
                        let checksum = cur.u32()?;
                        chunks.push(ChunkEntry {
                            offset,
                            stored_len,
                            raw_len,
                            codec,
                            checksum,
                        });
                    }
                    Payload::Dataset(DatasetMeta {
                        dtype,
                        chunking,
                        chunks,
                    })
                }
                other => return Err(Mh5Error::Corrupt(format!("unknown object kind {other}"))),
            };
            objects.push(Object {
                name,
                attrs,
                payload,
            });
        }
        if !cur.is_empty() {
            return Err(Mh5Error::Corrupt(format!(
                "{} trailing bytes after object table",
                cur.remaining()
            )));
        }
        let table = ObjectTable { objects };
        // Validate child references.
        for obj in &table.objects {
            if let Payload::Group { children } = &obj.payload {
                for &c in children {
                    if c as usize >= table.objects.len() {
                        return Err(Mh5Error::Corrupt(format!("dangling child id {c}")));
                    }
                }
            }
        }
        match table.objects[0].payload {
            Payload::Group { .. } => {}
            _ => return Err(Mh5Error::Corrupt("object 0 is not a group".into())),
        }
        Ok(table)
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader used by all metadata decoding.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Mh5Error::Corrupt(format!(
                "unexpected end of metadata: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| Mh5Error::Corrupt("name is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ObjectTable {
        let mut t = ObjectTable::with_root();
        t.objects.push(Object {
            name: "entry".into(),
            attrs: vec![
                ("beamline".into(), AttrValue::Str("34-ID-E".into())),
                ("run".into(), AttrValue::Int(7)),
            ],
            payload: Payload::Group { children: vec![2] },
        });
        let chunking = Chunking::new(
            Shape::new(&[4, 6, 9]).unwrap(),
            Shape::new(&[1, 2, 9]).unwrap(),
        )
        .unwrap();
        let chunks = (0..chunking.n_chunks())
            .map(|i| ChunkEntry {
                offset: 36 + 100 * i as u64,
                stored_len: 36,
                raw_len: 36,
                codec: Codec::Raw,
                checksum: 0xDEAD_BEEF,
            })
            .collect();
        t.objects.push(Object {
            name: "images".into(),
            attrs: vec![("units".into(), AttrValue::Str("counts".into()))],
            payload: Payload::Dataset(DatasetMeta {
                dtype: Dtype::U16,
                chunking,
                chunks,
            }),
        });
        if let Payload::Group { children } = &mut t.objects[0].payload {
            children.push(1);
        }
        t
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample_table();
        let bytes = t.encode();
        let back = ObjectTable::decode(&bytes).unwrap();
        assert_eq!(back.objects.len(), 3);
        assert_eq!(back.objects[1].name, "entry");
        assert_eq!(back.objects[1].attrs, t.objects[1].attrs);
        match (&back.objects[2].payload, &t.objects[2].payload) {
            (Payload::Dataset(a), Payload::Dataset(b)) => {
                assert_eq!(a.dtype, b.dtype);
                assert_eq!(a.chunking, b.chunking);
                assert_eq!(a.chunks, b.chunks);
            }
            _ => panic!("kind mismatch"),
        }
    }

    #[test]
    fn path_resolution() {
        let t = sample_table();
        assert_eq!(t.resolve_path("/").unwrap(), ObjectId(0));
        assert_eq!(t.resolve_path("/entry").unwrap(), ObjectId(1));
        assert_eq!(t.resolve_path("/entry/images").unwrap(), ObjectId(2));
        assert_eq!(t.resolve_path("entry/images").unwrap(), ObjectId(2));
        assert!(matches!(
            t.resolve_path("/entry/nope"),
            Err(Mh5Error::NotFound(_))
        ));
        // Descending through a dataset is a kind error.
        assert!(matches!(
            t.resolve_path("/entry/images/deeper"),
            Err(Mh5Error::WrongKind { .. })
        ));
    }

    #[test]
    fn decode_rejects_corruption() {
        let t = sample_table();
        let bytes = t.encode();
        // Truncation anywhere must error, never panic.
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(ObjectTable::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage detected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(ObjectTable::decode(&extended).is_err());
        // Unknown object kind.
        let mut bad = bytes.clone();
        bad[4] = 7; // first object's kind byte
        assert!(ObjectTable::decode(&bad).is_err());
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("images").is_ok());
        assert!(validate_name("with space").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name("nul\0byte").is_err());
    }

    #[test]
    fn dangling_child_rejected() {
        let mut t = ObjectTable::with_root();
        if let Payload::Group { children } = &mut t.objects[0].payload {
            children.push(42);
        }
        let bytes = t.encode();
        assert!(ObjectTable::decode(&bytes).is_err());
    }
}
