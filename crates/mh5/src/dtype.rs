//! Element types storable in mh5 datasets.

use crate::error::Mh5Error;
use crate::Result;

/// Scalar types a dataset can hold. All are stored little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    U8,
    U16,
    U32,
    I32,
    F32,
    F64,
}

impl Dtype {
    /// Size of one element in bytes.
    pub const fn size(self) -> usize {
        match self {
            Dtype::U8 => 1,
            Dtype::U16 => 2,
            Dtype::U32 | Dtype::I32 | Dtype::F32 => 4,
            Dtype::F64 => 8,
        }
    }

    /// Stable on-disk code.
    pub const fn code(self) -> u8 {
        match self {
            Dtype::U8 => 0,
            Dtype::U16 => 1,
            Dtype::U32 => 2,
            Dtype::I32 => 3,
            Dtype::F32 => 4,
            Dtype::F64 => 5,
        }
    }

    /// Decode an on-disk code.
    pub fn from_code(code: u8) -> Result<Dtype> {
        Ok(match code {
            0 => Dtype::U8,
            1 => Dtype::U16,
            2 => Dtype::U32,
            3 => Dtype::I32,
            4 => Dtype::F32,
            5 => Dtype::F64,
            other => return Err(Mh5Error::Corrupt(format!("unknown dtype code {other}"))),
        })
    }

    /// Human-readable name (used in error messages).
    pub const fn name(self) -> &'static str {
        match self {
            Dtype::U8 => "u8",
            Dtype::U16 => "u16",
            Dtype::U32 => "u32",
            Dtype::I32 => "i32",
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }
}

/// Rust scalar types that map onto a [`Dtype`].
///
/// The byte conversions go through explicit little-endian encoding rather
/// than transmutes, keeping the format portable and the crate free of
/// `unsafe`.
pub trait Element: Copy + Default + 'static {
    /// The corresponding dtype tag.
    const DTYPE: Dtype;

    /// Append this element's little-endian bytes to `out`.
    fn write_le(self, out: &mut Vec<u8>);

    /// Decode one element from the start of `bytes` (must be long enough).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $dtype:expr) => {
        impl Element for $t {
            const DTYPE: Dtype = $dtype;

            #[inline]
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                buf.copy_from_slice(&bytes[..std::mem::size_of::<$t>()]);
                <$t>::from_le_bytes(buf)
            }
        }
    };
}

impl_element!(u8, Dtype::U8);
impl_element!(u16, Dtype::U16);
impl_element!(u32, Dtype::U32);
impl_element!(i32, Dtype::I32);
impl_element!(f32, Dtype::F32);
impl_element!(f64, Dtype::F64);

/// Encode a slice of elements into little-endian bytes.
pub fn encode_slice<T: Element>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::DTYPE.size());
    for &x in data {
        x.write_le(&mut out);
    }
    out
}

/// Decode little-endian bytes into elements; errors when `bytes` is not a
/// whole number of elements.
pub fn decode_slice<T: Element>(bytes: &[u8]) -> Result<Vec<T>> {
    let sz = T::DTYPE.size();
    if !bytes.len().is_multiple_of(sz) {
        return Err(Mh5Error::Corrupt(format!(
            "payload of {} bytes is not a multiple of element size {sz}",
            bytes.len()
        )));
    }
    Ok(bytes.chunks_exact(sz).map(T::read_le).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_codes_round_trip() {
        for d in [
            Dtype::U8,
            Dtype::U16,
            Dtype::U32,
            Dtype::I32,
            Dtype::F32,
            Dtype::F64,
        ] {
            assert_eq!(Dtype::from_code(d.code()).unwrap(), d);
            assert!(d.size() >= 1 && d.size() <= 8);
        }
        assert!(Dtype::from_code(99).is_err());
    }

    #[test]
    fn element_round_trips() {
        fn rt<T: Element + PartialEq + std::fmt::Debug>(vals: &[T]) {
            let bytes = encode_slice(vals);
            assert_eq!(bytes.len(), vals.len() * T::DTYPE.size());
            let back: Vec<T> = decode_slice(&bytes).unwrap();
            assert_eq!(&back, vals);
        }
        rt::<u8>(&[0, 1, 127, 255]);
        rt::<u16>(&[0, 1, 0xABCD, u16::MAX]);
        rt::<u32>(&[0, 42, u32::MAX]);
        rt::<i32>(&[i32::MIN, -1, 0, i32::MAX]);
        rt::<f32>(&[0.0, -1.5, f32::MAX, f32::MIN_POSITIVE]);
        rt::<f64>(&[0.0, std::f64::consts::PI, -1e300, 5e-324]);
    }

    #[test]
    fn decode_rejects_ragged_payload() {
        assert!(decode_slice::<u16>(&[1, 2, 3]).is_err());
        assert!(decode_slice::<f64>(&[0; 12]).is_err());
        assert!(decode_slice::<u8>(&[1, 2, 3]).is_ok());
    }

    #[test]
    fn nan_survives_round_trip_as_bits() {
        let bytes = encode_slice(&[f64::NAN]);
        let back: Vec<f64> = decode_slice(&bytes).unwrap();
        assert!(back[0].is_nan());
    }
}
