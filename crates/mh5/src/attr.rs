//! Attributes: small typed metadata attached to groups and datasets.

use crate::error::Mh5Error;
use crate::Result;

/// An attribute value. Mirrors the scalar/string/small-array attributes the
/// beamline files use for geometry calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Small integer array.
    IntArray(Vec<i64>),
    /// Small float array (e.g. a Rodrigues vector or translation).
    FloatArray(Vec<f64>),
}

impl AttrValue {
    /// On-disk tag.
    pub(crate) const fn tag(&self) -> u8 {
        match self {
            AttrValue::Int(_) => 0,
            AttrValue::Float(_) => 1,
            AttrValue::Str(_) => 2,
            AttrValue::IntArray(_) => 3,
            AttrValue::FloatArray(_) => 4,
        }
    }

    /// Convenience accessor: the value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor: the value as a float (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Convenience accessor: the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor: the value as a float array.
    pub fn as_float_array(&self) -> Option<&[f64]> {
        match self {
            AttrValue::FloatArray(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize into `out`.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            AttrValue::Int(v) => out.extend_from_slice(&v.to_le_bytes()),
            AttrValue::Float(v) => out.extend_from_slice(&v.to_le_bytes()),
            AttrValue::Str(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            AttrValue::IntArray(a) => {
                out.extend_from_slice(&(a.len() as u32).to_le_bytes());
                for v in a {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            AttrValue::FloatArray(a) => {
                out.extend_from_slice(&(a.len() as u32).to_le_bytes());
                for v in a {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    /// Deserialize from `cur`, advancing it.
    pub(crate) fn decode(cur: &mut crate::meta::Cursor<'_>) -> Result<AttrValue> {
        let tag = cur.u8()?;
        Ok(match tag {
            0 => AttrValue::Int(i64::from_le_bytes(cur.bytes(8)?.try_into().unwrap())),
            1 => AttrValue::Float(f64::from_le_bytes(cur.bytes(8)?.try_into().unwrap())),
            2 => {
                let len = cur.u32()? as usize;
                let raw = cur.bytes(len)?;
                AttrValue::Str(
                    String::from_utf8(raw.to_vec())
                        .map_err(|_| Mh5Error::Corrupt("attribute string is not UTF-8".into()))?,
                )
            }
            3 => {
                let len = cur.u32()? as usize;
                let mut a = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    a.push(i64::from_le_bytes(cur.bytes(8)?.try_into().unwrap()));
                }
                AttrValue::IntArray(a)
            }
            4 => {
                let len = cur.u32()? as usize;
                let mut a = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    a.push(f64::from_le_bytes(cur.bytes(8)?.try_into().unwrap()));
                }
                AttrValue::FloatArray(a)
            }
            other => return Err(Mh5Error::Corrupt(format!("unknown attribute tag {other}"))),
        })
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<Vec<f64>> for AttrValue {
    fn from(v: Vec<f64>) -> Self {
        AttrValue::FloatArray(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Cursor;

    fn round_trip(v: AttrValue) -> AttrValue {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut cur = Cursor::new(&buf);
        let back = AttrValue::decode(&mut cur).unwrap();
        assert!(
            cur.is_empty(),
            "decoder must consume exactly what encode produced"
        );
        back
    }

    #[test]
    fn all_variants_round_trip() {
        for v in [
            AttrValue::Int(-42),
            AttrValue::Float(std::f64::consts::E),
            AttrValue::Str("34-ID-E µ-Laue".into()),
            AttrValue::IntArray(vec![1, -2, 3]),
            AttrValue::FloatArray(vec![0.25, -1e12, 5e-324]),
        ] {
            assert_eq!(round_trip(v.clone()), v);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::Int(5).as_int(), Some(5));
        assert_eq!(AttrValue::Int(5).as_float(), Some(5.0));
        assert_eq!(AttrValue::Float(2.5).as_float(), Some(2.5));
        assert_eq!(AttrValue::Float(2.5).as_int(), None);
        assert_eq!(AttrValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(
            AttrValue::from(vec![1.0]).as_float_array(),
            Some(&[1.0][..])
        );
    }

    #[test]
    fn decode_rejects_bad_tag_and_truncation() {
        let mut cur = Cursor::new(&[9u8]);
        assert!(AttrValue::decode(&mut cur).is_err());
        let mut cur = Cursor::new(&[0u8, 1, 2]); // Int but only 3 bytes
        assert!(AttrValue::decode(&mut cur).is_err());
    }
}
