//! Reading mh5 files.
//!
//! [`FileReader::open`] validates the header, truncation guard and metadata
//! CRC up front; dataset payloads are read lazily, chunk by chunk, so a
//! hyperslab read touches only the chunks it intersects — this is what lets
//! the reconstruction pipeline stream row slabs through a memory-capped
//! device without ever materialising the whole stack.

use std::cell::RefCell;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::attr::AttrValue;
use crate::codec::decode_chunk;
use crate::crc::crc32;
use crate::dtype::{decode_slice, Element};
use crate::error::Mh5Error;
use crate::meta::{DatasetInfo, DatasetMeta, ObjectId, ObjectKind, ObjectTable, Payload};
use crate::shape::copy_box;
use crate::{Result, FORMAT_VERSION, HEADER_LEN, MAGIC};

/// Read-only handle to an mh5 file.
#[derive(Debug)]
pub struct FileReader {
    file: RefCell<File>,
    table: ObjectTable,
    file_len: u64,
}

impl FileReader {
    /// Open and validate `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<FileReader> {
        let mut file = File::open(path)?;
        let actual_len = file.metadata()?.len();
        if actual_len < HEADER_LEN {
            return Err(Mh5Error::Truncated {
                expected: HEADER_LEN,
                actual: actual_len,
            });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        let magic: [u8; 8] = header[..8].try_into().unwrap();
        if magic != MAGIC {
            return Err(Mh5Error::BadMagic(magic));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(Mh5Error::UnsupportedVersion(version));
        }
        let meta_offset = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let meta_len = u64::from_le_bytes(header[20..28].try_into().unwrap());
        let file_len = u64::from_le_bytes(header[28..36].try_into().unwrap());
        if file_len == 0 || meta_offset == 0 {
            return Err(Mh5Error::Corrupt(
                "header was never finalized (writer did not finish)".into(),
            ));
        }
        if actual_len < file_len {
            return Err(Mh5Error::Truncated {
                expected: file_len,
                actual: actual_len,
            });
        }
        if meta_offset.checked_add(meta_len) != Some(file_len) {
            return Err(Mh5Error::Corrupt(format!(
                "metadata block [{meta_offset}, +{meta_len}) does not end at recorded file length {file_len}"
            )));
        }
        if meta_len < 4 {
            return Err(Mh5Error::Corrupt(
                "metadata block too small for its CRC".into(),
            ));
        }
        let mut block = vec![0u8; meta_len as usize];
        file.seek(SeekFrom::Start(meta_offset))?;
        file.read_exact(&mut block)?;
        let stored = u32::from_le_bytes(block[..4].try_into().unwrap());
        let computed = crc32(&block[4..]);
        if stored != computed {
            return Err(Mh5Error::ChecksumMismatch { stored, computed });
        }
        let table = ObjectTable::decode(&block[4..])?;
        // Validate the chunk directory stays inside the payload region.
        for obj in &table.objects {
            if let Payload::Dataset(ds) = &obj.payload {
                for (ci, e) in ds.chunks.iter().enumerate() {
                    let end = e.offset.checked_add(e.stored_len);
                    if e.offset < HEADER_LEN || end.is_none() || end.unwrap() > meta_offset {
                        return Err(Mh5Error::Corrupt(format!(
                            "dataset {:?} chunk {ci} payload [{}, +{}) escapes data region",
                            obj.name, e.offset, e.stored_len
                        )));
                    }
                }
            }
        }
        Ok(FileReader {
            file: RefCell::new(file),
            table,
            file_len,
        })
    }

    /// The root group.
    pub fn root(&self) -> ObjectId {
        ObjectId(0)
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Kind of an object.
    pub fn kind(&self, obj: ObjectId) -> Result<ObjectKind> {
        Ok(self.table.get(obj)?.kind())
    }

    /// Name of an object (empty for the root).
    pub fn name(&self, obj: ObjectId) -> Result<&str> {
        Ok(&self.table.get(obj)?.name)
    }

    /// Children of a group as `(name, id)` pairs, in creation order.
    pub fn list(&self, group: ObjectId) -> Result<Vec<(String, ObjectId)>> {
        let obj = self.table.get(group)?;
        match &obj.payload {
            Payload::Group { children } => children
                .iter()
                .map(|&c| {
                    let id = ObjectId(c);
                    Ok((self.table.get(id)?.name.clone(), id))
                })
                .collect(),
            Payload::Dataset(_) => Err(Mh5Error::WrongKind {
                path: obj.name.clone(),
                expected: "group",
            }),
        }
    }

    /// Resolve an absolute path like `/entry/images`.
    pub fn resolve_path(&self, path: &str) -> Result<ObjectId> {
        self.table.resolve_path(path)
    }

    /// Look up a child by name.
    pub fn child(&self, group: ObjectId, name: &str) -> Result<Option<ObjectId>> {
        self.table.child(group, name)
    }

    /// All attributes of an object.
    pub fn attrs(&self, obj: ObjectId) -> Result<&[(String, AttrValue)]> {
        Ok(&self.table.get(obj)?.attrs)
    }

    /// One attribute by name.
    pub fn attr(&self, obj: ObjectId, name: &str) -> Result<Option<&AttrValue>> {
        Ok(self
            .table
            .get(obj)?
            .attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v))
    }

    fn dataset_meta(&self, ds: ObjectId) -> Result<&DatasetMeta> {
        let obj = self.table.get(ds)?;
        match &obj.payload {
            Payload::Dataset(m) => Ok(m),
            Payload::Group { .. } => Err(Mh5Error::WrongKind {
                path: obj.name.clone(),
                expected: "dataset",
            }),
        }
    }

    /// Summary of a dataset.
    pub fn dataset_info(&self, ds: ObjectId) -> Result<DatasetInfo> {
        let m = self.dataset_meta(ds)?;
        Ok(DatasetInfo {
            dtype: m.dtype,
            shape: m.chunking.shape.dims().to_vec(),
            chunk_shape: m.chunking.chunk.dims().to_vec(),
            n_chunks: m.chunks.len(),
            stored_bytes: m.chunks.iter().map(|c| c.stored_len).sum(),
        })
    }

    /// Read and decode one chunk's raw bytes.
    fn read_chunk_bytes(&self, meta: &DatasetMeta, chunk_index: usize) -> Result<Vec<u8>> {
        let entry = meta.chunks.get(chunk_index).ok_or_else(|| {
            Mh5Error::Corrupt(format!("chunk index {chunk_index} outside directory"))
        })?;
        let expected_raw = meta.chunking.chunk_elements(chunk_index) * meta.dtype.size();
        if entry.raw_len as usize != expected_raw {
            return Err(Mh5Error::Corrupt(format!(
                "chunk {chunk_index} raw length {} != geometric size {expected_raw}",
                entry.raw_len
            )));
        }
        let mut payload = vec![0u8; entry.stored_len as usize];
        {
            let mut f = self.file.borrow_mut();
            f.seek(SeekFrom::Start(entry.offset))?;
            f.read_exact(&mut payload)?;
        }
        let computed = crc32(&payload);
        if computed != entry.checksum {
            return Err(Mh5Error::ChecksumMismatch {
                stored: entry.checksum,
                computed,
            });
        }
        decode_chunk(&payload, entry.codec, entry.raw_len as usize)
    }

    /// Read an entire dataset into a row-major vector.
    pub fn read_all<T: Element>(&self, ds: ObjectId) -> Result<Vec<T>> {
        let info = self.dataset_info(ds)?;
        let offset = vec![0usize; info.shape.len()];
        self.read_hyperslab(ds, &offset, &info.shape)
    }

    /// Read a hyperslab: `count[i]` elements starting at `offset[i]` on each
    /// axis, returned row-major with shape `count`.
    pub fn read_hyperslab<T: Element>(
        &self,
        ds: ObjectId,
        offset: &[usize],
        count: &[usize],
    ) -> Result<Vec<T>> {
        let meta = self.dataset_meta(ds)?;
        if T::DTYPE != meta.dtype {
            return Err(Mh5Error::TypeMismatch {
                expected: T::DTYPE.name(),
                actual: meta.dtype.name(),
            });
        }
        let rank = meta.chunking.shape.rank();
        let elem = meta.dtype.size();
        let n_out: usize = count.iter().product();
        let mut out_bytes = vec![0u8; n_out * elem];
        meta.chunking.for_each_intersecting_chunk(
            offset,
            count,
            |ci, in_chunk, in_slab, ext| {
                let chunk_bytes = self.read_chunk_bytes(meta, ci)?;
                let coords = meta.chunking.chunk_coords(ci);
                let chunk_ext = meta.chunking.chunk_extent(&coords[..rank]);
                copy_box(
                    &chunk_bytes,
                    &chunk_ext[..rank],
                    in_chunk,
                    &mut out_bytes,
                    count,
                    in_slab,
                    ext,
                    elem,
                );
                Ok(())
            },
        )?;
        decode_slice(&out_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::Dtype;
    use crate::writer::FileWriter;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mh5_reader_{}_{name}.mh5", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn write_sample(p: &PathBuf) -> Vec<u16> {
        let mut w = FileWriter::create(p).unwrap();
        let entry = w.create_group(FileWriter::ROOT, "entry").unwrap();
        w.set_attr(entry, "beamline", AttrValue::Str("34-ID-E".into()))
            .unwrap();
        w.set_attr(entry, "wire_radius_um", AttrValue::Float(25.0))
            .unwrap();
        let ds = w
            .create_dataset(entry, "images", Dtype::U16, &[4, 6, 9], &[1, 2, 9])
            .unwrap();
        let data: Vec<u16> = (0..4 * 6 * 9).map(|i| (i * 7 % 60_000) as u16).collect();
        w.write_all(ds, &data).unwrap();
        w.finish().unwrap();
        data
    }

    #[test]
    fn full_round_trip() {
        let p = tmp("round");
        let data = write_sample(&p);
        let r = FileReader::open(&p).unwrap();
        let ds = r.resolve_path("/entry/images").unwrap();
        let info = r.dataset_info(ds).unwrap();
        assert_eq!(info.shape, vec![4, 6, 9]);
        assert_eq!(info.chunk_shape, vec![1, 2, 9]);
        assert_eq!(info.n_chunks, 12);
        let back: Vec<u16> = r.read_all(ds).unwrap();
        assert_eq!(back, data);
        assert_eq!(
            r.attr(r.resolve_path("/entry").unwrap(), "wire_radius_um")
                .unwrap()
                .unwrap()
                .as_float(),
            Some(25.0)
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn hyperslab_matches_reference() {
        let p = tmp("slab");
        let data = write_sample(&p);
        let r = FileReader::open(&p).unwrap();
        let ds = r.resolve_path("/entry/images").unwrap();
        // Row-slab read across images: images 1..3, rows 3..5, all cols.
        let got: Vec<u16> = r.read_hyperslab(ds, &[1, 3, 2], &[2, 2, 5]).unwrap();
        let mut want = Vec::new();
        for img in 1..3 {
            for row in 3..5 {
                for col in 2..7 {
                    want.push(data[(img * 6 + row) * 9 + col]);
                }
            }
        }
        assert_eq!(got, want);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn out_of_bounds_selection_rejected() {
        let p = tmp("oob");
        write_sample(&p);
        let r = FileReader::open(&p).unwrap();
        let ds = r.resolve_path("/entry/images").unwrap();
        assert!(matches!(
            r.read_hyperslab::<u16>(ds, &[0, 5, 0], &[1, 2, 9]),
            Err(Mh5Error::SelectionOutOfBounds { axis: 1, .. })
        ));
        assert!(
            r.read_hyperslab::<u16>(ds, &[0, 0], &[1, 1]).is_err(),
            "rank mismatch"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let p = tmp("dtype");
        write_sample(&p);
        let r = FileReader::open(&p).unwrap();
        let ds = r.resolve_path("/entry/images").unwrap();
        assert!(matches!(
            r.read_all::<f64>(ds),
            Err(Mh5Error::TypeMismatch { .. })
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn truncated_file_detected() {
        let p = tmp("trunc");
        write_sample(&p);
        let full = std::fs::read(&p).unwrap();
        std::fs::write(&p, &full[..full.len() - 10]).unwrap();
        assert!(matches!(
            FileReader::open(&p),
            Err(Mh5Error::Truncated { .. })
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metadata_corruption_detected_by_crc() {
        let p = tmp("crc");
        write_sample(&p);
        let mut bytes = std::fs::read(&p).unwrap();
        // Flip one bit in the metadata body (last 10 bytes are inside it).
        let n = bytes.len();
        bytes[n - 5] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            FileReader::open(&p),
            Err(Mh5Error::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn chunk_payload_corruption_detected() {
        // Flip a byte inside a chunk payload (not the metadata): the
        // per-chunk CRC must catch it on read, while open() succeeds.
        let p = tmp("payload");
        write_sample(&p);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[HEADER_LEN as usize + 3] ^= 0x10; // first chunk's payload
        std::fs::write(&p, &bytes).unwrap();
        let r = FileReader::open(&p).expect("metadata is intact");
        let ds = r.resolve_path("/entry/images").unwrap();
        assert!(matches!(
            r.read_all::<u16>(ds),
            Err(Mh5Error::ChecksumMismatch { .. })
        ));
        // Chunks elsewhere still read fine.
        let tail: Vec<u16> = r.read_hyperslab(ds, &[3, 4, 0], &[1, 2, 9]).unwrap();
        assert_eq!(tail.len(), 18);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let p = tmp("magic");
        write_sample(&p);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[0] = b'X';
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(FileReader::open(&p), Err(Mh5Error::BadMagic(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn unfinished_file_detected() {
        let p = tmp("unfinished");
        let mut w = FileWriter::create(&p).unwrap();
        let ds = w
            .create_dataset(FileWriter::ROOT, "d", Dtype::U8, &[2], &[2])
            .unwrap();
        w.write_chunk(ds, 0, &[1u8, 2]).unwrap();
        drop(w); // never finished
        assert!(FileReader::open(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn listing_and_kinds() {
        let p = tmp("list");
        write_sample(&p);
        let r = FileReader::open(&p).unwrap();
        let entries = r.list(r.root()).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "entry");
        assert_eq!(r.kind(entries[0].1).unwrap(), ObjectKind::Group);
        let inner = r.list(entries[0].1).unwrap();
        assert_eq!(inner[0].0, "images");
        assert_eq!(r.kind(inner[0].1).unwrap(), ObjectKind::Dataset);
        // Listing a dataset is a kind error.
        assert!(r.list(inner[0].1).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rle_datasets_round_trip() {
        let p = tmp("rle");
        let mut w = FileWriter::create(&p).unwrap();
        let ds = w
            .create_dataset_with_codec(
                FileWriter::ROOT,
                "flat",
                Dtype::U16,
                &[16, 16],
                &[4, 16],
                crate::codec::Codec::Rle,
            )
            .unwrap();
        // 0x0707: both little-endian bytes equal, so byte-level RLE applies.
        let data = vec![0x0707u16; 256];
        w.write_all(ds, &data).unwrap();
        w.finish().unwrap();
        let r = FileReader::open(&p).unwrap();
        let ds = r.resolve_path("/flat").unwrap();
        let info = r.dataset_info(ds).unwrap();
        assert!(
            info.stored_bytes < 256 * 2,
            "constant data should compress: {} bytes",
            info.stored_bytes
        );
        let back: Vec<u16> = r.read_all(ds).unwrap();
        assert_eq!(back, data);
        std::fs::remove_file(&p).ok();
    }
}
