//! Chunk payload codecs.
//!
//! Detector backgrounds are long runs of identical values, so a byte-level
//! run-length codec is worthwhile; the writer keeps a chunk compressed only
//! when it actually shrinks, so pathological inputs cost at most a copy.

use crate::error::Mh5Error;
use crate::Result;

/// How a chunk payload is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Verbatim little-endian element bytes.
    Raw,
    /// Byte run-length encoding: a stream of `(run_len: u8 ≥ 1, byte)` pairs.
    Rle,
}

impl Codec {
    /// Stable on-disk code.
    pub const fn code(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Rle => 1,
        }
    }

    /// Decode an on-disk code.
    pub fn from_code(code: u8) -> Result<Codec> {
        Ok(match code {
            0 => Codec::Raw,
            1 => Codec::Rle,
            other => return Err(Mh5Error::Corrupt(format!("unknown codec code {other}"))),
        })
    }
}

/// RLE-encode `data`. Always succeeds; may be longer than the input.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 2);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Decode an RLE stream, validating that it expands to exactly
/// `expected_len` bytes.
pub fn rle_decode(data: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(Mh5Error::Corrupt("RLE stream has odd length".into()));
    }
    let mut out = Vec::with_capacity(expected_len);
    for pair in data.chunks_exact(2) {
        let (run, b) = (pair[0] as usize, pair[1]);
        if run == 0 {
            return Err(Mh5Error::Corrupt("RLE run of length zero".into()));
        }
        if out.len() + run > expected_len {
            return Err(Mh5Error::Corrupt(format!(
                "RLE stream expands past expected length {expected_len}"
            )));
        }
        out.resize(out.len() + run, b);
    }
    if out.len() != expected_len {
        return Err(Mh5Error::Corrupt(format!(
            "RLE stream expands to {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Encode a chunk with the requested codec preference, falling back to raw
/// when compression does not pay. Returns the payload and the codec actually
/// used.
pub fn encode_chunk(data: &[u8], prefer: Codec) -> (Vec<u8>, Codec) {
    match prefer {
        Codec::Raw => (data.to_vec(), Codec::Raw),
        Codec::Rle => {
            let enc = rle_encode(data);
            if enc.len() < data.len() {
                (enc, Codec::Rle)
            } else {
                (data.to_vec(), Codec::Raw)
            }
        }
    }
}

/// Decode a chunk payload stored with `codec` into `raw_len` bytes.
pub fn decode_chunk(payload: &[u8], codec: Codec, raw_len: usize) -> Result<Vec<u8>> {
    match codec {
        Codec::Raw => {
            if payload.len() != raw_len {
                return Err(Mh5Error::Corrupt(format!(
                    "raw chunk is {} bytes, directory records {raw_len}",
                    payload.len()
                )));
            }
            Ok(payload.to_vec())
        }
        Codec::Rle => rle_decode(payload, raw_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        assert_eq!(Codec::from_code(Codec::Raw.code()).unwrap(), Codec::Raw);
        assert_eq!(Codec::from_code(Codec::Rle.code()).unwrap(), Codec::Rle);
        assert!(Codec::from_code(7).is_err());
    }

    #[test]
    fn rle_round_trips() {
        for data in [
            vec![],
            vec![42u8],
            vec![0u8; 1000],
            (0..=255u8).collect::<Vec<_>>(),
            vec![1, 1, 1, 2, 2, 3, 3, 3, 3, 3],
            vec![9u8; 300], // run longer than 255
        ] {
            let enc = rle_encode(&data);
            assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn rle_compresses_constant_data() {
        let data = vec![7u8; 10_000];
        let enc = rle_encode(&data);
        assert!(
            enc.len() < 100,
            "constant data should compress well: {}",
            enc.len()
        );
    }

    #[test]
    fn encode_chunk_falls_back_to_raw() {
        let incompressible: Vec<u8> = (0..=255u8).collect();
        let (payload, codec) = encode_chunk(&incompressible, Codec::Rle);
        assert_eq!(codec, Codec::Raw);
        assert_eq!(payload, incompressible);
    }

    #[test]
    fn decode_rejects_corrupt_streams() {
        assert!(rle_decode(&[3], 3).is_err(), "odd length");
        assert!(rle_decode(&[0, 5], 0).is_err(), "zero run");
        assert!(rle_decode(&[200, 1], 10).is_err(), "expands too far");
        assert!(rle_decode(&[5, 1], 10).is_err(), "expands too little");
        assert!(
            decode_chunk(&[1, 2, 3], Codec::Raw, 4).is_err(),
            "raw length mismatch"
        );
    }
}
