//! Inspection helpers: render a file's tree the way `h5ls -rv` would.

use crate::attr::AttrValue;
use crate::meta::{ObjectId, ObjectKind};
use crate::reader::FileReader;
use crate::Result;

fn fmt_attr(value: &AttrValue) -> String {
    match value {
        AttrValue::Int(v) => format!("{v}"),
        AttrValue::Float(v) => format!("{v}"),
        AttrValue::Str(s) => format!("{s:?}"),
        AttrValue::IntArray(a) => format!("{a:?}"),
        AttrValue::FloatArray(a) => {
            if a.len() <= 6 {
                format!("{a:?}")
            } else {
                format!("[{} floats]", a.len())
            }
        }
    }
}

fn dump_object(r: &FileReader, id: ObjectId, path: &str, out: &mut String) -> Result<()> {
    match r.kind(id)? {
        ObjectKind::Group => {
            out.push_str(&format!("{path}/\n"));
            for (name, value) in r.attrs(id)? {
                out.push_str(&format!("{path}/@{name} = {}\n", fmt_attr(value)));
            }
            for (name, child) in r.list(id)? {
                let child_path = if path.is_empty() {
                    format!("/{name}")
                } else {
                    format!("{path}/{name}")
                };
                dump_object(r, child, &child_path, out)?;
            }
        }
        ObjectKind::Dataset => {
            let info = r.dataset_info(id)?;
            let shape: Vec<String> = info.shape.iter().map(|d| d.to_string()).collect();
            let chunk: Vec<String> = info.chunk_shape.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!(
                "{path}  {} ({}) chunks ({}) ×{}, {} B stored\n",
                info.dtype.name(),
                shape.join("×"),
                chunk.join("×"),
                info.n_chunks,
                info.stored_bytes,
            ));
            for (name, value) in r.attrs(id)? {
                out.push_str(&format!("{path}/@{name} = {}\n", fmt_attr(value)));
            }
        }
    }
    Ok(())
}

/// Render the whole tree (groups, datasets, attributes) as text.
pub fn dump_tree(r: &FileReader) -> Result<String> {
    let mut out = String::new();
    dump_object(r, r.root(), "", &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dtype, FileWriter};

    #[test]
    fn dump_covers_groups_datasets_and_attrs() {
        let path = std::env::temp_dir().join(format!("mh5_tools_{}.mh5", std::process::id()));
        let mut w = FileWriter::create(&path).unwrap();
        let g = w.create_group(FileWriter::ROOT, "entry").unwrap();
        w.set_attr(g, "beamline", AttrValue::Str("34-ID-E".into()))
            .unwrap();
        w.set_attr(g, "run", AttrValue::Int(12)).unwrap();
        let ds = w
            .create_dataset(g, "images", Dtype::U16, &[2, 3, 4], &[1, 3, 4])
            .unwrap();
        w.set_attr(ds, "units", AttrValue::Str("counts".into()))
            .unwrap();
        w.write_all(ds, &[7u16; 24]).unwrap();
        w.finish().unwrap();

        let r = FileReader::open(&path).unwrap();
        let text = dump_tree(&r).unwrap();
        assert!(text.contains("/entry/"));
        assert!(text.contains("@beamline = \"34-ID-E\""));
        assert!(text.contains("@run = 12"));
        assert!(text.contains("/entry/images  u16 (2×3×4) chunks (1×3×4) ×2"));
        assert!(text.contains("@units = \"counts\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn long_float_arrays_abbreviated() {
        assert_eq!(fmt_attr(&AttrValue::FloatArray(vec![0.0; 9])), "[9 floats]");
        assert_eq!(
            fmt_attr(&AttrValue::FloatArray(vec![1.0, 2.0])),
            "[1.0, 2.0]"
        );
    }
}
