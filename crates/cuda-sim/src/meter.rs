//! Work meters: what a kernel did, and where the virtual time went.

/// Work performed by (part of) a kernel, accumulated by simulated threads.
///
/// Costs are *logical* work counts — the performance models in
/// [`crate::props`] convert them to seconds. `atomic_max_chain` approximates
/// the longest chain of atomics hitting one address (the serialization
/// bound); it is estimated from striped per-address counters and merged with
/// `max`, the other fields with `+`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Floating-point operations.
    pub flops: u64,
    /// Device-memory bytes moved (reads + writes).
    pub mem_bytes: u64,
    /// Atomic read-modify-write operations.
    pub atomic_ops: u64,
    /// CAS retries observed while performing those atomics.
    pub atomic_retries: u64,
    /// Estimated longest same-address atomic chain.
    pub atomic_max_chain: u64,
    /// On-chip shared-memory bytes moved (reads + writes).
    pub shared_bytes: u64,
    /// Atomic RMWs resolved in shared memory.
    pub shared_atomic_ops: u64,
    /// Shared-memory bytes reserved per block at launch (occupancy
    /// pressure); merged with `max` like the chain bound.
    pub shared_request: u64,
}

impl Cost {
    /// Merge another cost into this one (sums; max for the chain bound).
    pub fn merge(&mut self, other: &Cost) {
        self.flops += other.flops;
        self.mem_bytes += other.mem_bytes;
        self.atomic_ops += other.atomic_ops;
        self.atomic_retries += other.atomic_retries;
        self.atomic_max_chain = self.atomic_max_chain.max(other.atomic_max_chain);
        self.shared_bytes += other.shared_bytes;
        self.shared_atomic_ops += other.shared_atomic_ops;
        self.shared_request = self.shared_request.max(other.shared_request);
    }

    /// True when no work at all was recorded.
    pub fn is_zero(&self) -> bool {
        *self == Cost::default()
    }
}

/// Number of free-form trace counters available to kernels.
pub const TRACE_SLOTS: usize = 8;

/// Record of one kernel launch, for reports and ablations.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchRecord {
    /// Kernel label passed to `launch`.
    pub name: String,
    /// Total simulated threads.
    pub threads: u64,
    /// Aggregated work.
    pub cost: Cost,
    /// Modeled duration, seconds.
    pub duration_s: f64,
    /// Stream the launch ran on.
    pub stream: usize,
    /// Virtual start time on its stream.
    pub start_s: f64,
    /// Virtual end time on its stream.
    pub end_s: f64,
    /// Simulator-instrumentation counters (see
    /// [`crate::ThreadCtx::trace`]); excluded from the performance model.
    pub traces: [u64; TRACE_SLOTS],
}

/// Aggregated virtual-time accounting for a device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Meters {
    /// Seconds spent in host↔device transfers.
    pub comm_time_s: f64,
    /// Extra seconds transfers spent stalled on (or fragmented across)
    /// the host's shared PCIe bus, beyond their uncontended duration.
    /// Zero for strictly serial schedules; the honest price of overlap.
    pub bus_wait_s: f64,
    /// Seconds spent in kernels.
    pub compute_time_s: f64,
    /// Bytes shipped host → device.
    pub h2d_bytes: u64,
    /// Bytes shipped device → host.
    pub d2h_bytes: u64,
    /// Number of host↔device transfers.
    pub transfers: u64,
    /// Coalesced bus transactions among `transfers` (each stages several
    /// logical copies but pays the PCIe latency once).
    pub coalesced_transactions: u64,
    /// Logical copies folded into those coalesced transactions.
    pub coalesced_copies: u64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Total metered kernel work.
    pub kernel_cost: Cost,
}

impl Meters {
    /// Wall-clock-equivalent total when copies and kernels never overlap
    /// (the paper's baseline pipeline).
    pub fn serial_total_s(&self) -> f64 {
        self.comm_time_s + self.compute_time_s
    }
}

/// Striped per-address collision counter used to estimate the longest
/// same-address atomic chain without tracking every address exactly.
#[derive(Debug)]
pub struct ChainEstimator {
    buckets: Vec<u32>,
}

impl ChainEstimator {
    /// Number of stripes; power of two for cheap masking.
    pub const BUCKETS: usize = 4096;

    /// Fresh estimator (one per executor worker, merged afterwards).
    pub fn new() -> ChainEstimator {
        ChainEstimator {
            buckets: vec![0; Self::BUCKETS],
        }
    }

    /// Record one atomic touching `address_index`.
    #[inline]
    pub fn record(&mut self, address_index: usize) {
        self.buckets[address_index & (Self::BUCKETS - 1)] += 1;
    }

    /// Merge a worker's counts into this one (bucket-wise sum, because the
    /// same address chains across workers).
    pub fn merge(&mut self, other: &ChainEstimator) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Upper-bound estimate of the longest same-address chain.
    pub fn max_chain(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0) as u64
    }
}

impl Default for ChainEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_merge_sums_and_maxes() {
        let mut a = Cost {
            flops: 10,
            mem_bytes: 100,
            atomic_ops: 2,
            atomic_retries: 1,
            atomic_max_chain: 5,
            shared_bytes: 64,
            shared_atomic_ops: 3,
            shared_request: 1024,
        };
        let b = Cost {
            flops: 3,
            mem_bytes: 7,
            atomic_ops: 4,
            atomic_retries: 0,
            atomic_max_chain: 2,
            shared_bytes: 16,
            shared_atomic_ops: 1,
            shared_request: 2048,
        };
        a.merge(&b);
        assert_eq!(a.flops, 13);
        assert_eq!(a.mem_bytes, 107);
        assert_eq!(a.atomic_ops, 6);
        assert_eq!(a.atomic_retries, 1);
        assert_eq!(a.atomic_max_chain, 5);
        assert_eq!(a.shared_bytes, 80);
        assert_eq!(a.shared_atomic_ops, 4);
        assert_eq!(a.shared_request, 2048, "request merges with max");
        assert!(!a.is_zero());
        assert!(Cost::default().is_zero());
    }

    #[test]
    fn chain_estimator_counts_hot_addresses() {
        let mut e = ChainEstimator::new();
        for _ in 0..100 {
            e.record(42);
        }
        for i in 0..50 {
            e.record(i * ChainEstimator::BUCKETS + 7); // all alias bucket 7
        }
        assert_eq!(e.max_chain(), 100);
        let mut other = ChainEstimator::new();
        for _ in 0..30 {
            other.record(42);
        }
        e.merge(&other);
        assert_eq!(e.max_chain(), 130);
    }

    #[test]
    fn serial_total_is_sum() {
        let m = Meters {
            comm_time_s: 1.5,
            compute_time_s: 2.5,
            ..Meters::default()
        };
        assert_eq!(m.serial_total_s(), 4.0);
    }
}
