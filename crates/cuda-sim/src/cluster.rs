//! A cluster of hosts linked by a metered interconnect — the multi-node
//! generalization of [`Host`].
//!
//! One [`Host`] models a chassis: a shared PCIe bus and a host CPU on one
//! discrete-event engine. A [`Cluster`] is N such chassis plus an
//! [`Interconnect`]: every inter-node message drains through per-node NIC
//! link pools on a dedicated cluster-level engine, charged
//! `latency + bytes / bandwidth` per message, so reduction traffic has a
//! cost and a queue exactly like PCIe transfers do inside a chassis.
//!
//! The NIC model mirrors the PCIe [`Duplex`] discipline one level up:
//!
//! * [`Duplex::Half`] (the default) gives each node *one* link pool used
//!   by both its sends and its receives — a node relaying a reduction
//!   segment stores-and-forwards, which is what the era's single-port
//!   HCAs with shared DMA engines effectively did.
//! * [`Duplex::Full`] gives each node independent tx and rx pools, so a
//!   relay can receive one segment while forwarding another — the
//!   cut-through pipelining a switched fabric provides.
//!
//! A message from `u` to `v` occupies `u`'s tx pool for its full duration
//! and then `v`'s rx pool for the same duration starting no earlier than
//! the send began; uncontended messages therefore arrive at exactly
//! `ready + latency + bytes/bandwidth`, while a busy receiver pushes the
//! arrival (and the sender's next slot) out — receiver backpressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::host::{Duplex, Host, HostConfig};
use crate::sim::{Engine, ResourceId};

/// Performance model for an inter-node link: era-named presets live in
/// `laue_bench::devices` next to the GPU matrix; the raw constructors are
/// here so non-bench crates can build a fabric without that dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectProps {
    /// Name for traces, reports, and CLI selection.
    pub name: String,
    /// Sustained per-link bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Per-message launch latency in seconds (rendezvous + DMA setup).
    pub latency_s: f64,
    /// NIC discipline (see module docs).
    pub duplex: Duplex,
}

impl InterconnectProps {
    /// InfiniBand QDR 4× (2010-era): ~4 GB/s per link, ~1.3 µs.
    pub fn ib_qdr() -> InterconnectProps {
        InterconnectProps {
            name: "ib-qdr".to_string(),
            bandwidth_bytes_per_s: 4.0e9,
            latency_s: 1.3e-6,
            duplex: Duplex::Full,
        }
    }

    /// InfiniBand FDR 4× (2013-era): ~7 GB/s per link, ~0.7 µs.
    pub fn ib_fdr() -> InterconnectProps {
        InterconnectProps {
            name: "ib-fdr".to_string(),
            bandwidth_bytes_per_s: 7.0e9,
            latency_s: 0.7e-6,
            duplex: Duplex::Full,
        }
    }

    /// NVLink-class fabric (what the what-if studies extrapolate to):
    /// ~20 GB/s per link, ~0.5 µs.
    pub fn nvlink_class() -> InterconnectProps {
        InterconnectProps {
            name: "nvlink".to_string(),
            bandwidth_bytes_per_s: 20.0e9,
            latency_s: 0.5e-6,
            duplex: Duplex::Full,
        }
    }

    /// Gigabit Ethernet (the beamline-cluster floor of the paper's era):
    /// ~117 MB/s effective, ~50 µs, single-pool NIC.
    pub fn gige() -> InterconnectProps {
        InterconnectProps {
            name: "gige".to_string(),
            bandwidth_bytes_per_s: 0.117e9,
            latency_s: 50.0e-6,
            duplex: Duplex::Half,
        }
    }

    /// Resolve a preset by its `name` field. Unknown names return `None`.
    pub fn by_name(name: &str) -> Option<InterconnectProps> {
        [
            InterconnectProps::ib_qdr(),
            InterconnectProps::ib_fdr(),
            InterconnectProps::nvlink_class(),
            InterconnectProps::gige(),
        ]
        .into_iter()
        .find(|p| p.name == name)
    }

    /// Modeled occupancy of one message of `bytes` on one link pool.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

/// One delivered inter-node message: where it actually sat on the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// When the sender's NIC actually started transmitting.
    pub start: f64,
    /// When the last byte cleared the receiver's NIC.
    pub arrival: f64,
    /// Seconds queued beyond the uncontended time
    /// (`arrival - ready - message_time`).
    pub wait_s: f64,
}

/// The metered inter-node fabric: one link pool per node (two under
/// [`Duplex::Full`]) on a dedicated cluster-level engine.
#[derive(Debug)]
pub struct Interconnect {
    engine: Arc<Engine>,
    props: InterconnectProps,
    tx: Vec<ResourceId>,
    rx: Vec<ResourceId>,
    sent_bytes: AtomicU64,
    messages: AtomicU64,
}

impl Interconnect {
    /// Build a fabric linking `n_nodes` nodes under `props`.
    pub fn new(name: &str, n_nodes: usize, props: InterconnectProps) -> Arc<Interconnect> {
        assert!(n_nodes > 0, "a fabric needs at least one node");
        let engine = Arc::new(Engine::new());
        let mut tx = Vec::with_capacity(n_nodes);
        let mut rx = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let t = engine.shared(&format!("{name}/node{i}-tx"));
            tx.push(t);
            rx.push(match props.duplex {
                Duplex::Half => t,
                Duplex::Full => engine.shared(&format!("{name}/node{i}-rx")),
            });
        }
        Arc::new(Interconnect {
            engine,
            props,
            tx,
            rx,
            sent_bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        })
    }

    /// The link performance model.
    pub fn props(&self) -> &InterconnectProps {
        &self.props
    }

    /// Number of nodes on the fabric.
    pub fn n_nodes(&self) -> usize {
        self.tx.len()
    }

    /// Deliver `bytes` from node `from` to node `to`, ready to transmit at
    /// `ready` virtual seconds. The message occupies the sender's tx pool
    /// and then the receiver's rx pool (same pool under half duplex);
    /// uncontended delivery is exactly `ready + message_time(bytes)`.
    ///
    /// Grants commit in call order, so callers that need a deterministic
    /// schedule must issue sends in a deterministic order.
    pub fn send(&self, from: usize, to: usize, bytes: u64, ready: f64) -> Delivery {
        assert!(
            from < self.tx.len() && to < self.tx.len(),
            "node off fabric"
        );
        assert_ne!(from, to, "loopback never touches the fabric");
        let dur = self.props.message_time(bytes);
        let (tx_start, _tx_end) =
            self.engine
                .shared_acquire(self.tx[from], from as u64, "net-tx", ready, dur);
        let (_rx_start, arrival) =
            self.engine
                .shared_acquire(self.rx[to], to as u64, "net-rx", tx_start, dur);
        self.sent_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
        Delivery {
            start: tx_start,
            arrival,
            wait_s: (arrival - ready - dur).max(0.0),
        }
    }

    /// Committed link-busy seconds of one node's NIC (both pools under
    /// full duplex).
    pub fn link_busy_s(&self, node: usize) -> f64 {
        match self.props.duplex {
            Duplex::Half => self.engine.busy_s(self.tx[node]),
            Duplex::Full => self.engine.busy_s(self.tx[node]) + self.engine.busy_s(self.rx[node]),
        }
    }

    /// Total bytes delivered across the fabric.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes.load(Ordering::Relaxed)
    }

    /// Total messages delivered across the fabric.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

/// Configuration for a [`Cluster`]: homogeneous chassis (one [`HostConfig`]
/// template stamped per node) on one fabric.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Name prefix for per-node hosts and the fabric.
    pub name: String,
    /// Number of chassis.
    pub nodes: usize,
    /// Per-chassis template (PCIe duplex, host-CPU model).
    pub host: HostConfig,
    /// Inter-node link model.
    pub interconnect: InterconnectProps,
}

/// N chassis — each its own [`Host`] with a private PCIe domain and CPU —
/// linked by one [`Interconnect`]. Devices attach to a node's host via
/// [`crate::Device::new_on_host`]; inter-node traffic goes through
/// [`Cluster::interconnect`].
#[derive(Debug)]
pub struct Cluster {
    hosts: Vec<Arc<Host>>,
    interconnect: Arc<Interconnect>,
}

impl Cluster {
    /// Build a cluster from a configuration.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        assert!(cfg.nodes > 0, "a cluster needs at least one node");
        let hosts = (0..cfg.nodes)
            .map(|i| {
                Host::new(HostConfig {
                    name: format!("{}/node{i}", cfg.name),
                    ..cfg.host.clone()
                })
            })
            .collect();
        let interconnect = Interconnect::new(&cfg.name, cfg.nodes, cfg.interconnect);
        Cluster {
            hosts,
            interconnect,
        }
    }

    /// Number of chassis.
    pub fn nodes(&self) -> usize {
        self.hosts.len()
    }

    /// One node's chassis (PCIe bus + host CPU).
    pub fn host(&self, node: usize) -> &Arc<Host> {
        &self.hosts[node]
    }

    /// The inter-node fabric.
    pub fn interconnect(&self) -> &Arc<Interconnect> {
        &self.interconnect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(duplex: Duplex) -> Arc<Interconnect> {
        Interconnect::new(
            "t",
            4,
            InterconnectProps {
                name: "unit".to_string(),
                bandwidth_bytes_per_s: 1000.0,
                latency_s: 0.5,
                duplex,
            },
        )
    }

    #[test]
    fn uncontended_message_time_is_latency_plus_bytes_over_bandwidth() {
        let net = fabric(Duplex::Half);
        let d = net.send(1, 0, 1000, 2.0);
        assert_eq!(d.start, 2.0);
        assert_eq!(d.arrival, 2.0 + 0.5 + 1.0);
        assert_eq!(d.wait_s, 0.0);
        assert_eq!(net.sent_bytes(), 1000);
        assert_eq!(net.messages(), 1);
    }

    #[test]
    fn half_duplex_nic_serializes_send_and_receive() {
        let net = fabric(Duplex::Half);
        // Node 1 receives 1.5 s of traffic, then wants to forward at t=0:
        // its single pool is busy until 1.5, so the forward queues.
        net.send(2, 1, 1000, 0.0);
        let d = net.send(1, 0, 1000, 0.0);
        assert_eq!(d.start, 1.5, "store-and-forward on the shared pool");
        assert_eq!(d.arrival, 3.0);
        assert_eq!(d.wait_s, 1.5);
    }

    #[test]
    fn full_duplex_nic_receives_while_forwarding() {
        let net = fabric(Duplex::Full);
        net.send(2, 1, 1000, 0.0);
        let d = net.send(1, 0, 1000, 0.0);
        assert_eq!(d.start, 0.0, "tx pool is independent of the rx pool");
        assert_eq!(d.arrival, 1.5);
    }

    #[test]
    fn busy_receiver_pushes_the_arrival_out() {
        let net = fabric(Duplex::Full);
        let a = net.send(1, 0, 1000, 0.0);
        let b = net.send(2, 0, 1000, 0.0);
        assert_eq!(a.arrival, 1.5);
        // Sender 2's tx pool is free, but node 0's rx pool is occupied
        // until 1.5 — the root link is the gather bottleneck.
        assert_eq!(b.arrival, 3.0);
        assert_eq!(b.wait_s, 1.5);
        assert_eq!(net.link_busy_s(0), 3.0);
    }

    #[test]
    fn cluster_stamps_one_host_per_node_on_one_fabric() {
        let c = Cluster::new(ClusterConfig {
            name: "c".to_string(),
            nodes: 3,
            host: HostConfig::default(),
            interconnect: InterconnectProps::ib_qdr(),
        });
        assert_eq!(c.nodes(), 3);
        assert_eq!(c.interconnect().n_nodes(), 3);
        // Distinct engines: chassis schedules are independent.
        assert!(!Arc::ptr_eq(c.host(0).engine(), c.host(1).engine()));
    }

    #[test]
    fn presets_resolve_by_name() {
        for p in ["ib-qdr", "ib-fdr", "nvlink", "gige"] {
            let props = InterconnectProps::by_name(p).unwrap();
            assert_eq!(props.name, p);
            assert!(props.bandwidth_bytes_per_s > 0.0);
        }
        assert!(InterconnectProps::by_name("token-ring").is_none());
    }
}
