//! The host machine a device (or several) is plugged into: the shared
//! PCIe bus and the host CPU, modeled as contended resources on one
//! discrete-event [`Engine`].
//!
//! Historically every stream carried its own private bus cursor, so the
//! ring pipeline's concurrent upload + download each got full bandwidth
//! and `gpu-multi` devices never contended at all. A [`Host`] fixes that:
//! all transfers of every device attached to it drain through one metered
//! bus, and host-side triangulation FLOPs occupy a host-CPU resource, so
//! their cost is visible instead of free.
//!
//! [`crate::Device::new`] gives each device a private host (one device on
//! the bus — the old numbers for single-device runs are reproduced
//! exactly). Fleet code attaches several devices to one host with
//! [`crate::Device::new_on_host`], which is where the contention shows up.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::TransferDir;
use crate::meter::Cost;
use crate::props::HostProps;
use crate::sim::{Engine, ResourceId};

/// PCIe link discipline for the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Duplex {
    /// One pool of link time shared by both directions, all streams, all
    /// devices on the host. The conservative model: a concurrent upload
    /// and download serialize. This is the default — the gen-2 switches
    /// and chipset paths of the paper's era rarely sustained both
    /// directions at rated speed.
    #[default]
    Half,
    /// Independent per-direction pools: an upload contends with uploads
    /// (any stream, any device) but not with downloads.
    Full,
}

/// Configuration for a [`Host`].
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Name for traces and reports.
    pub name: String,
    /// Bus discipline (see [`Duplex`]).
    pub duplex: Duplex,
    /// Performance model for host-side work charged via
    /// [`Device::charge_host_flops`](crate::Device::charge_host_flops).
    pub cpu: HostProps,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            name: "host".to_string(),
            duplex: Duplex::Half,
            cpu: HostProps::xeon_e5630(),
        }
    }
}

/// A host node: one engine, one shared PCIe bus (one pool per direction
/// under [`Duplex::Full`]), one host-CPU resource.
#[derive(Debug)]
pub struct Host {
    engine: Arc<Engine>,
    duplex: Duplex,
    cpu_props: HostProps,
    bus_up: ResourceId,
    bus_down: ResourceId,
    cpu: ResourceId,
    next_slot: AtomicU64,
}

impl Host {
    /// Build a host from a configuration.
    pub fn new(cfg: HostConfig) -> Arc<Host> {
        let engine = Arc::new(Engine::new());
        let bus_up = engine.shared(&format!("{}/pcie-h2d", cfg.name));
        let bus_down = match cfg.duplex {
            Duplex::Half => bus_up,
            Duplex::Full => engine.shared(&format!("{}/pcie-d2h", cfg.name)),
        };
        let cpu = engine.shared(&format!("{}/cpu", cfg.name));
        Arc::new(Host {
            engine,
            duplex: cfg.duplex,
            cpu_props: cfg.cpu,
            bus_up,
            bus_down,
            cpu,
            next_slot: AtomicU64::new(0),
        })
    }

    /// Host with the default configuration (half-duplex bus, Xeon E5630
    /// CPU model).
    pub fn new_default() -> Arc<Host> {
        Host::new(HostConfig::default())
    }

    /// The event engine every attached device schedules through.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Bus discipline.
    pub fn duplex(&self) -> Duplex {
        self.duplex
    }

    /// The CPU performance model host-side FLOPs are charged against.
    pub fn cpu_props(&self) -> &HostProps {
        &self.cpu_props
    }

    /// Claim an engine-local actor slot for a newly attached device.
    /// Slots are dense and deterministic (0, 1, 2, … in attach order), so
    /// journals of replayed plans compare bit-identically.
    pub(crate) fn attach(&self) -> u64 {
        self.next_slot.fetch_add(1, Ordering::Relaxed)
    }

    fn bus_for(&self, dir: TransferDir) -> ResourceId {
        match dir {
            TransferDir::HostToDevice => self.bus_up,
            TransferDir::DeviceToHost => self.bus_down,
        }
    }

    /// Acquire the bus for a transfer of modeled duration `dur` starting
    /// no earlier than `ready`; returns the `(start, end)` the transfer
    /// actually occupied. Uncontended acquisitions are `(ready, ready +
    /// dur)` exactly.
    pub(crate) fn bus_acquire(
        &self,
        dir: TransferDir,
        owner: u64,
        label: &'static str,
        ready: f64,
        dur: f64,
    ) -> (f64, f64) {
        self.engine
            .shared_acquire(self.bus_for(dir), owner, label, ready, dur)
    }

    /// Charge `flops` of host-side work (triangulation tables, shadow
    /// culling) to the host-CPU resource under the host's CPU model.
    /// Returns the `(start, end)` the work occupied. Host work packs the
    /// CPU from t = 0 (tables are produced ahead of the uploads that
    /// consume them) and is accounted in parallel with device time — it
    /// never stalls a device stream.
    pub(crate) fn cpu_charge(&self, owner: u64, flops: u64) -> (f64, f64) {
        if flops == 0 {
            return (0.0, 0.0);
        }
        let cost = Cost {
            flops,
            ..Cost::default()
        };
        let dur = self.cpu_props.kernel_time(&cost, 1);
        self.engine
            .shared_acquire(self.cpu, owner, "host-flops", 0.0, dur)
    }

    /// Committed bus-busy seconds across every attached device (both
    /// directions; under [`Duplex::Half`] they are one pool).
    pub fn bus_busy_s(&self) -> f64 {
        match self.duplex {
            Duplex::Half => self.engine.busy_s(self.bus_up),
            Duplex::Full => self.engine.busy_s(self.bus_up) + self.engine.busy_s(self.bus_down),
        }
    }

    /// Bus-busy seconds one attached device contributed.
    pub(crate) fn bus_busy_s_of(&self, owner: u64) -> f64 {
        match self.duplex {
            Duplex::Half => self.engine.busy_s_of(self.bus_up, owner),
            Duplex::Full => {
                self.engine.busy_s_of(self.bus_up, owner)
                    + self.engine.busy_s_of(self.bus_down, owner)
            }
        }
    }

    /// Committed host-CPU busy seconds across every attached device.
    pub fn cpu_busy_s(&self) -> f64 {
        self.engine.busy_s(self.cpu)
    }

    /// Host-CPU busy seconds one attached device contributed.
    pub(crate) fn cpu_busy_s_of(&self, owner: u64) -> f64 {
        self.engine.busy_s_of(self.cpu, owner)
    }

    /// Forget everything one device committed on the host's shared
    /// resources — the device is starting a fresh virtual timeline (meter
    /// reset). Other devices' commitments stay.
    pub(crate) fn release(&self, owner: u64) {
        self.engine.shared_release_owner(self.bus_up, owner);
        if self.duplex == Duplex::Full {
            self.engine.shared_release_owner(self.bus_down, owner);
        }
        self.engine.shared_release_owner(self.cpu, owner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_duplex_serializes_opposite_directions() {
        let h = Host::new_default();
        let a = h.attach();
        let (_, up_end) = h.bus_acquire(TransferDir::HostToDevice, a, "h2d", 0.0, 1.0);
        let (down_start, down_end) = h.bus_acquire(TransferDir::DeviceToHost, a, "d2h", 0.0, 1.0);
        assert_eq!(up_end, 1.0);
        assert_eq!(down_start, 1.0, "download waits for the upload");
        assert_eq!(down_end, 2.0);
        assert_eq!(h.bus_busy_s(), 2.0);
    }

    #[test]
    fn full_duplex_overlaps_opposite_directions_but_not_same() {
        let h = Host::new(HostConfig {
            duplex: Duplex::Full,
            ..HostConfig::default()
        });
        let a = h.attach();
        h.bus_acquire(TransferDir::HostToDevice, a, "h2d", 0.0, 1.0);
        let (down_start, _) = h.bus_acquire(TransferDir::DeviceToHost, a, "d2h", 0.0, 1.0);
        assert_eq!(down_start, 0.0, "opposite directions are independent");
        let (up2_start, _) = h.bus_acquire(TransferDir::HostToDevice, a, "h2d", 0.5, 1.0);
        assert_eq!(up2_start, 1.0, "same direction still serializes");
        assert_eq!(h.bus_busy_s(), 3.0);
    }

    #[test]
    fn cpu_charges_pack_from_zero_and_meter_busy_time() {
        let h = Host::new_default();
        let a = h.attach();
        let (s1, e1) = h.cpu_charge(a, 1_000_000);
        let (s2, e2) = h.cpu_charge(a, 1_000_000);
        assert_eq!(s1, 0.0);
        assert_eq!(s2, e1, "second charge packs right after the first");
        assert!((h.cpu_busy_s() - e2).abs() < 1e-15);
        assert_eq!(h.cpu_charge(a, 0), (0.0, 0.0), "zero flops are free");
    }

    #[test]
    fn release_clears_only_one_devices_commitments() {
        let h = Host::new_default();
        let a = h.attach();
        let b = h.attach();
        h.bus_acquire(TransferDir::HostToDevice, a, "h2d", 0.0, 1.0);
        h.bus_acquire(TransferDir::HostToDevice, b, "h2d", 0.0, 1.0);
        h.cpu_charge(a, 1_000_000);
        h.release(a);
        assert_eq!(h.bus_busy_s(), 1.0, "b's grant survives");
        assert_eq!(h.cpu_busy_s(), 0.0);
        // a restarts at t = 0 and now contends with b's standing grant at
        // [1, 2): it backfills the free gap [0.5, 1) and finishes after b.
        let (s, e) = h.bus_acquire(TransferDir::HostToDevice, a, "h2d", 0.5, 1.0);
        assert_eq!(s, 0.5);
        assert_eq!(e, 2.5);
    }
}
