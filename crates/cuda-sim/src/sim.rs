//! Discrete-event simulation core: injectable clocks, schedulable events,
//! and contended resources.
//!
//! Everything time-related in the simulator is built on this module. A
//! [`Clock`] is an injectable time source — [`VirtualClock`] for modeled
//! runs (the default everywhere), [`RealClock`] for wall-clock-paced replay
//! of a schedule. An [`Engine`] owns a set of [`ResourceId`]-addressed
//! resources of two kinds:
//!
//! * **Serial** resources execute one operation at a time behind a cursor —
//!   CUDA streams and any other in-order queue. Scheduling on a serial
//!   resource starts at its cursor and advances it.
//! * **Shared** resources model contended hardware: the PCIe bus a host's
//!   devices all hang off, or the host CPU computing triangulation tables.
//!   An acquisition asks for `dur` seconds of *exclusive occupancy* from a
//!   ready time; already-committed grants are never altered, and the new
//!   grant drains through the free gaps of the occupancy profile (FIFO DMA
//!   arbitration with backfill). Two transfers issued for overlapping
//!   intervals therefore serialize instead of overlapping for free — the
//!   bug this module exists to fix — while an acquisition on an idle
//!   resource completes in exactly `ready + dur`, which is what keeps
//!   serial (`k = 1`) schedules bit-identical to the pre-engine model.
//!
//! Every scheduling decision can be journaled as an [`EventRecord`];
//! replaying the same plan on a fresh engine yields a bit-identical
//! journal, which is the property the resume/fault machinery leans on.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// An injectable time source. `now` is in seconds from an arbitrary origin;
/// `advance_to` moves a settable clock monotonically forward and is a no-op
/// on clocks that follow real time.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Current time, seconds.
    fn now(&self) -> f64;
    /// Advance to at least `t` (never moves backwards). Real clocks ignore
    /// this; the virtual clock takes the running max.
    fn advance_to(&self, t: f64);
}

/// Settable virtual clock: an atomic running max over every scheduled
/// operation's end time. The global frontier of an [`Engine`].
#[derive(Debug, Default)]
pub struct VirtualClock {
    /// `f64::to_bits` of the time; for non-negative floats the integer
    /// order matches the numeric order, so `fetch_max` is a time max.
    bits: AtomicU64,
}

impl Clock for VirtualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    fn advance_to(&self, t: f64) {
        debug_assert!(t >= 0.0, "virtual time is non-negative");
        self.bits.fetch_max(t.to_bits(), Ordering::AcqRel);
    }
}

/// Wall-clock time source, for pacing a replayed schedule against real
/// time (e.g. a service layer animating a recorded run). Never used by the
/// modeled devices themselves.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// Clock whose zero is "now".
    pub fn new() -> RealClock {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Real time cannot be advanced; this is a no-op.
    fn advance_to(&self, _t: f64) {}
}

/// Generational handle to an engine resource. Freed handles are detected
/// (generation mismatch) and panic like a use-after-destroy of a
/// `cudaStream_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId {
    idx: u32,
    gen: u32,
}

/// One committed occupancy interval on a shared resource.
#[derive(Debug, Clone, Copy)]
struct Grant {
    start: f64,
    end: f64,
    owner: u64,
}

#[derive(Debug)]
enum ResourceKind {
    Serial {
        cursor: f64,
    },
    Shared {
        /// Sorted by start; pairwise disjoint (new grants only ever occupy
        /// free gaps).
        grants: Vec<Grant>,
        busy_by_owner: BTreeMap<u64, f64>,
    },
}

#[derive(Debug)]
struct Slot {
    gen: u32,
    live: bool,
    name: String,
    kind: ResourceKind,
    /// Committed busy seconds (occupancy; waits excluded).
    busy_s: f64,
}

/// One journaled scheduling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Issue order, engine-wide.
    pub seq: u64,
    /// Resource the operation ran on.
    pub resource: ResourceId,
    /// Operation label (`"h2d"`, `"kernel"`, …).
    pub label: &'static str,
    /// Engine-local actor tag (a host slot, *not* the global device id, so
    /// replays on fresh engines journal identically).
    pub owner: u64,
    /// When the operation first held the resource.
    pub start_s: f64,
    /// When it released it.
    pub end_s: f64,
}

#[derive(Debug, Default)]
struct EngineState {
    slots: Vec<Slot>,
    free_list: Vec<u32>,
    journal: Option<Vec<EventRecord>>,
    seq: u64,
}

/// The discrete-event engine: a clock plus a set of resources. One engine
/// per [`crate::Host`]; every device on the host schedules through it, so
/// shared resources really are shared across devices.
pub struct Engine {
    clock: Arc<dyn Clock>,
    state: Mutex<EngineState>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Engine")
            .field("clock", &self.clock)
            .field("resources", &st.slots.len())
            .field("seq", &st.seq)
            .finish()
    }
}

impl Engine {
    /// Engine on a fresh [`VirtualClock`].
    pub fn new() -> Engine {
        Engine::with_clock(Arc::new(VirtualClock::default()))
    }

    /// Engine on an injected clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Engine {
        Engine {
            clock,
            state: Mutex::new(EngineState::default()),
        }
    }

    /// The engine's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time: the frontier of everything scheduled so far (virtual
    /// clock) or wall time (real clock).
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    fn insert(&self, name: &str, kind: ResourceKind) -> ResourceId {
        let mut st = self.state.lock();
        if let Some(idx) = st.free_list.pop() {
            let slot = &mut st.slots[idx as usize];
            slot.live = true;
            slot.name = name.to_string();
            slot.kind = kind;
            slot.busy_s = 0.0;
            ResourceId { idx, gen: slot.gen }
        } else {
            let idx = st.slots.len() as u32;
            st.slots.push(Slot {
                gen: 0,
                live: true,
                name: name.to_string(),
                kind,
                busy_s: 0.0,
            });
            ResourceId { idx, gen: 0 }
        }
    }

    /// Create a serial (in-order queue) resource with its cursor at 0.
    pub fn serial(&self, name: &str) -> ResourceId {
        self.insert(name, ResourceKind::Serial { cursor: 0.0 })
    }

    /// Create a shared (contended-occupancy) resource.
    pub fn shared(&self, name: &str) -> ResourceId {
        self.insert(
            name,
            ResourceKind::Shared {
                grants: Vec::new(),
                busy_by_owner: BTreeMap::new(),
            },
        )
    }

    /// Destroy a resource. Its handle — and any stale copy of it — becomes
    /// invalid; further use panics, like touching a destroyed stream.
    pub fn free(&self, id: ResourceId) {
        let mut st = self.state.lock();
        let slot = &mut st.slots[id.idx as usize];
        assert!(
            slot.live && slot.gen == id.gen,
            "double free / stale resource handle {:?}",
            id
        );
        slot.live = false;
        slot.gen += 1;
        slot.kind = ResourceKind::Serial { cursor: 0.0 };
        st.free_list.push(id.idx);
    }

    fn check(st: &mut EngineState, id: ResourceId) -> &mut Slot {
        let slot = &mut st.slots[id.idx as usize];
        assert!(
            slot.live && slot.gen == id.gen,
            "stale resource handle {:?} (resource was destroyed)",
            id
        );
        slot
    }

    fn journal_push(
        st: &mut EngineState,
        resource: ResourceId,
        label: &'static str,
        owner: u64,
        start_s: f64,
        end_s: f64,
    ) {
        st.seq += 1;
        let seq = st.seq;
        if let Some(j) = st.journal.as_mut() {
            j.push(EventRecord {
                seq,
                resource,
                label,
                owner,
                start_s,
                end_s,
            });
        }
    }

    /// Schedule `dur` seconds on a serial resource: starts at the cursor,
    /// advances it. Returns the `(start, end)` interval.
    pub fn serial_advance(
        &self,
        id: ResourceId,
        owner: u64,
        label: &'static str,
        dur: f64,
    ) -> (f64, f64) {
        let mut st = self.state.lock();
        let slot = Self::check(&mut st, id);
        let ResourceKind::Serial { cursor } = &mut slot.kind else {
            panic!("serial_advance on shared resource {:?}", id);
        };
        let start = *cursor;
        let end = start + dur;
        *cursor = end;
        slot.busy_s += dur;
        if dur > 0.0 {
            Self::journal_push(&mut st, id, label, owner, start, end);
        }
        drop(st);
        self.clock.advance_to(end);
        (start, end)
    }

    /// Move a serial cursor forward to at least `t` (an event/dependency
    /// wait; charges nothing).
    pub fn serial_wait_until(&self, id: ResourceId, t: f64) {
        let mut st = self.state.lock();
        let slot = Self::check(&mut st, id);
        let ResourceKind::Serial { cursor } = &mut slot.kind else {
            panic!("serial_wait_until on shared resource {:?}", id);
        };
        if *cursor < t {
            *cursor = t;
        }
    }

    /// Set a serial cursor outright (stream creation joining the frontier,
    /// barriers, resets).
    pub fn serial_set(&self, id: ResourceId, t: f64) {
        let mut st = self.state.lock();
        let slot = Self::check(&mut st, id);
        let ResourceKind::Serial { cursor } = &mut slot.kind else {
            panic!("serial_set on shared resource {:?}", id);
        };
        *cursor = t;
    }

    /// A serial resource's cursor: when its last scheduled op ends.
    pub fn serial_cursor(&self, id: ResourceId) -> f64 {
        let mut st = self.state.lock();
        let slot = Self::check(&mut st, id);
        match &slot.kind {
            ResourceKind::Serial { cursor } => *cursor,
            _ => panic!("serial_cursor on shared resource {:?}", id),
        }
    }

    /// Acquire `dur` seconds of exclusive occupancy on a shared resource,
    /// no earlier than `ready`. Committed grants are immutable; the new
    /// grant drains through the free gaps of the occupancy profile (FIFO
    /// with backfill) and may be split across several gaps, like a DMA
    /// engine bursting whenever the bus is free. Returns `(start, end)`:
    /// first grab of the resource, and when the last second drains.
    ///
    /// On a resource that is idle from `ready` onwards this is exactly
    /// `(ready, ready + dur)` — the arithmetic, not an approximation of it —
    /// which keeps uncontended schedules bit-identical to the pre-engine
    /// per-stream cursor model.
    pub fn shared_acquire(
        &self,
        id: ResourceId,
        owner: u64,
        label: &'static str,
        ready: f64,
        dur: f64,
    ) -> (f64, f64) {
        if dur <= 0.0 {
            return (ready, ready);
        }
        let mut st = self.state.lock();
        let slot = Self::check(&mut st, id);
        let ResourceKind::Shared {
            grants,
            busy_by_owner,
        } = &mut slot.kind
        else {
            panic!("shared_acquire on serial resource {:?}", id);
        };
        // Fast path: nothing committed at or after `ready` — the exact
        // legacy arithmetic.
        let contended = grants.iter().any(|g| g.end > ready);
        let (start, end) = if !contended {
            let end = ready + dur;
            grants.push(Grant {
                start: ready,
                end,
                owner,
            });
            (ready, end)
        } else {
            // Drain through the free gaps, in start order.
            let mut chunks: Vec<(f64, f64)> = Vec::new();
            let mut t = ready;
            let mut rem = dur;
            for g in grants.iter().filter(|g| g.end > ready) {
                if g.start > t {
                    let take = rem.min(g.start - t);
                    chunks.push((t, t + take));
                    rem -= take;
                    if rem <= 0.0 {
                        break;
                    }
                }
                if g.end > t {
                    t = g.end;
                }
            }
            if rem > 0.0 {
                chunks.push((t, t + rem));
            }
            let start = chunks[0].0;
            let end = chunks.last().unwrap().1;
            grants.extend(chunks.into_iter().map(|(s, e)| Grant {
                start: s,
                end: e,
                owner,
            }));
            grants.sort_by(|a, b| a.start.total_cmp(&b.start));
            (start, end)
        };
        *busy_by_owner.entry(owner).or_insert(0.0) += dur;
        slot.busy_s += dur;
        Self::journal_push(&mut st, id, label, owner, start, end);
        drop(st);
        self.clock.advance_to(end);
        (start, end)
    }

    /// Drop every grant an owner holds on a shared resource and forget its
    /// busy time — the owner is starting a fresh virtual timeline (a meter
    /// reset). Other owners' commitments are untouched.
    pub fn shared_release_owner(&self, id: ResourceId, owner: u64) {
        let mut st = self.state.lock();
        let slot = Self::check(&mut st, id);
        let ResourceKind::Shared {
            grants,
            busy_by_owner,
        } = &mut slot.kind
        else {
            panic!("shared_release_owner on serial resource {:?}", id);
        };
        grants.retain(|g| g.owner != owner);
        busy_by_owner.remove(&owner);
        slot.busy_s = busy_by_owner.values().sum();
    }

    /// Committed busy seconds of a resource (all owners).
    pub fn busy_s(&self, id: ResourceId) -> f64 {
        let mut st = self.state.lock();
        Self::check(&mut st, id).busy_s
    }

    /// Committed busy seconds one owner contributed to a shared resource.
    pub fn busy_s_of(&self, id: ResourceId, owner: u64) -> f64 {
        let mut st = self.state.lock();
        let slot = Self::check(&mut st, id);
        match &slot.kind {
            ResourceKind::Shared { busy_by_owner, .. } => {
                busy_by_owner.get(&owner).copied().unwrap_or(0.0)
            }
            _ => panic!("busy_s_of on serial resource {:?}", id),
        }
    }

    /// Resource name (for reports).
    pub fn resource_name(&self, id: ResourceId) -> String {
        let mut st = self.state.lock();
        Self::check(&mut st, id).name.clone()
    }

    /// Start (or clear and restart) journaling of scheduling decisions.
    pub fn enable_journal(&self) {
        self.state.lock().journal = Some(Vec::new());
    }

    /// Stop journaling and drop the journal.
    pub fn disable_journal(&self) {
        self.state.lock().journal = None;
    }

    /// Snapshot of the journal (empty when journaling is off).
    pub fn journal(&self) -> Vec<EventRecord> {
        self.state.lock().journal.clone().unwrap_or_default()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_a_running_max() {
        let c = VirtualClock::default();
        assert_eq!(c.now(), 0.0);
        c.advance_to(2.5);
        c.advance_to(1.0);
        assert_eq!(c.now(), 2.5, "never moves backwards");
        c.advance_to(3.75);
        assert_eq!(c.now(), 3.75);
    }

    #[test]
    fn real_clock_marches_on_its_own() {
        let c = RealClock::new();
        let t0 = c.now();
        c.advance_to(1e9); // ignored
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now() > t0);
        assert!(c.now() < 1e9);
    }

    #[test]
    fn serial_resource_behaves_like_a_stream() {
        let e = Engine::new();
        let s = e.serial("stream");
        assert_eq!(e.serial_advance(s, 0, "a", 2.0), (0.0, 2.0));
        assert_eq!(e.serial_advance(s, 0, "b", 3.0), (2.0, 5.0));
        e.serial_wait_until(s, 7.0);
        assert_eq!(e.serial_advance(s, 0, "c", 1.0), (7.0, 8.0));
        e.serial_wait_until(s, 1.0); // no-op backwards
        assert_eq!(e.serial_cursor(s), 8.0);
        assert_eq!(e.busy_s(s), 6.0, "waits charge nothing");
        assert_eq!(e.now(), 8.0, "clock tracks the frontier");
    }

    #[test]
    fn idle_shared_resource_is_exact() {
        let e = Engine::new();
        let bus = e.shared("pcie");
        let (s, t) = e.shared_acquire(bus, 0, "h2d", 1.25, 0.5);
        assert_eq!((s, t), (1.25, 1.25 + 0.5), "bit-exact when uncontended");
        // Next op entirely after the first: still the exact arithmetic.
        let (s, t) = e.shared_acquire(bus, 0, "h2d", 2.0, 0.25);
        assert_eq!((s, t), (2.0, 2.25));
    }

    #[test]
    fn overlapping_acquisitions_serialize() {
        let e = Engine::new();
        let bus = e.shared("pcie");
        let (_, e1) = e.shared_acquire(bus, 0, "h2d", 0.0, 1.0);
        // Second transfer ready at 0.4, while the bus is held until 1.0.
        let (s2, e2) = e.shared_acquire(bus, 1, "d2h", 0.4, 1.0);
        assert_eq!(e1, 1.0);
        assert_eq!(s2, 1.0, "waits for the bus");
        assert_eq!(e2, 2.0, "takes longer than either alone");
        assert_eq!(e.busy_s(bus), 2.0);
        assert_eq!(e.busy_s_of(bus, 1), 1.0);
    }

    #[test]
    fn backfill_uses_gaps_without_disturbing_commitments() {
        let e = Engine::new();
        let bus = e.shared("pcie");
        // Commit [5, 10).
        e.shared_acquire(bus, 0, "h2d", 5.0, 5.0);
        // 4 s of work ready at 3: burns [3,5) then [10,12).
        let (s, t) = e.shared_acquire(bus, 0, "d2h", 3.0, 4.0);
        assert_eq!(s, 3.0);
        assert_eq!(t, 12.0);
        // The gap [3,5) really is taken now.
        let (s, t) = e.shared_acquire(bus, 0, "h2d", 0.0, 4.0);
        assert_eq!(s, 0.0);
        assert_eq!(t, 13.0, "only [0,3) and [12,∞) remain free");
    }

    #[test]
    fn release_owner_keeps_other_owners_commitments() {
        let e = Engine::new();
        let bus = e.shared("pcie");
        e.shared_acquire(bus, 0, "h2d", 0.0, 1.0);
        e.shared_acquire(bus, 1, "h2d", 0.0, 1.0); // serializes: [1,2)
        e.shared_release_owner(bus, 0);
        assert_eq!(e.busy_s(bus), 1.0);
        // Owner 0 restarts at t=0; only the gap before owner 1's grant at
        // [1,2) is free.
        let (s, t) = e.shared_acquire(bus, 0, "h2d", 0.0, 2.0);
        assert_eq!(s, 0.0);
        assert_eq!(t, 3.0);
    }

    #[test]
    fn freed_resources_are_recycled_and_stale_handles_panic() {
        let e = Engine::new();
        let a = e.serial("a");
        e.serial_advance(a, 0, "x", 1.0);
        e.free(a);
        let b = e.serial("b");
        assert_eq!(a.idx, b.idx, "slot recycled");
        assert_ne!(a.gen, b.gen);
        assert_eq!(e.serial_cursor(b), 0.0, "fresh cursor");
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.serial_cursor(a);
        }));
        assert!(stale.is_err(), "stale handle must panic");
    }

    #[test]
    fn journal_replays_bit_identically() {
        let plan = |e: &Engine| {
            let s = e.serial("stream");
            let bus = e.shared("pcie");
            e.serial_advance(s, 0, "kernel", 0.125);
            e.shared_acquire(bus, 0, "h2d", 0.0, 0.5);
            e.shared_acquire(bus, 1, "d2h", 0.25, 0.5);
            e.serial_advance(s, 0, "kernel", 0.0625);
        };
        let run = || {
            let e = Engine::new();
            e.enable_journal();
            plan(&e);
            e.journal()
        };
        let (a, b) = (run(), run());
        assert!(!a.is_empty());
        assert_eq!(a, b, "same plan, bit-identical journal");
    }
}
