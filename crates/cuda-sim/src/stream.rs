//! Stream timelines: the virtual-time scheduling model.
//!
//! Operations issued to the same stream execute back to back; operations on
//! different streams overlap freely (data hazards are the caller's
//! responsibility, as in CUDA). [`Timelines::elapsed`] is the overlapped
//! makespan — with everything on the default stream it equals the serial
//! `comm + compute` sum, and with a double-buffered two-stream pipeline it
//! approaches `max(comm, compute)`, which is precisely the ablation the
//! paper's related-work section motivates.

/// Identifies a stream on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// The default stream every device starts with.
    pub const DEFAULT: StreamId = StreamId(0);

    /// Index for reports.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-stream virtual clocks.
#[derive(Debug, Default)]
pub struct Timelines {
    cursors: Vec<f64>,
}

impl Timelines {
    /// Fresh set containing only the default stream.
    pub fn new() -> Timelines {
        Timelines { cursors: vec![0.0] }
    }

    /// Add a stream, starting "now" (at the current makespan, as if created
    /// after the preceding work was enqueued). A stream created mid-run
    /// cannot retroactively run work before the frontier — this is what
    /// makes sequential engine invocations on one device (multi-GPU
    /// failover rounds) accumulate makespan instead of overlapping at t=0.
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(self.cursors.len());
        self.cursors.push(self.elapsed());
        id
    }

    /// Number of streams.
    pub fn count(&self) -> usize {
        self.cursors.len()
    }

    /// Schedule an operation of `duration` on `stream`; returns its
    /// `(start, end)` interval. Panics on an unknown stream id (programmer
    /// error, like using a destroyed `cudaStream_t`).
    pub fn schedule(&mut self, stream: StreamId, duration: f64) -> (f64, f64) {
        let cursor = &mut self.cursors[stream.0];
        let start = *cursor;
        let end = start + duration;
        *cursor = end;
        (start, end)
    }

    /// Make `stream` wait until `time` (an event dependency).
    pub fn wait_until(&mut self, stream: StreamId, time: f64) {
        let cursor = &mut self.cursors[stream.0];
        if *cursor < time {
            *cursor = time;
        }
    }

    /// Current clock of one stream: when its last enqueued operation ends.
    /// Used by retry backoff to reason about idle time it injects.
    pub fn cursor(&self, stream: StreamId) -> f64 {
        self.cursors[stream.0]
    }

    /// Overlapped makespan: when the last stream goes idle.
    pub fn elapsed(&self) -> f64 {
        self.cursors.iter().copied().fold(0.0, f64::max)
    }

    /// Device-wide barrier: all streams advance to the makespan.
    pub fn synchronize(&mut self) -> f64 {
        let t = self.elapsed();
        for c in &mut self.cursors {
            *c = t;
        }
        t
    }

    /// Reset all clocks to zero (used with meter resets between runs).
    pub fn reset(&mut self) {
        for c in &mut self.cursors {
            *c = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_serializes() {
        let mut t = Timelines::new();
        let (s1, e1) = t.schedule(StreamId::DEFAULT, 2.0);
        let (s2, e2) = t.schedule(StreamId::DEFAULT, 3.0);
        assert_eq!((s1, e1), (0.0, 2.0));
        assert_eq!((s2, e2), (2.0, 5.0));
        assert_eq!(t.elapsed(), 5.0);
    }

    #[test]
    fn two_streams_overlap() {
        let mut t = Timelines::new();
        let s = t.create_stream();
        t.schedule(StreamId::DEFAULT, 2.0);
        t.schedule(s, 3.0);
        assert_eq!(t.elapsed(), 3.0, "copy and compute overlap");
    }

    #[test]
    fn synchronize_is_a_barrier() {
        let mut t = Timelines::new();
        let s = t.create_stream();
        t.schedule(StreamId::DEFAULT, 2.0);
        t.schedule(s, 5.0);
        let when = t.synchronize();
        assert_eq!(when, 5.0);
        // Work after the barrier starts at the barrier on every stream.
        let (start, _) = t.schedule(StreamId::DEFAULT, 1.0);
        assert_eq!(start, 5.0);
    }

    #[test]
    fn wait_until_orders_dependencies() {
        let mut t = Timelines::new();
        let s = t.create_stream();
        let (_, copy_done) = t.schedule(StreamId::DEFAULT, 2.0);
        t.wait_until(s, copy_done); // kernel on s consumes the copy
        let (start, _) = t.schedule(s, 1.0);
        assert_eq!(start, 2.0);
        // Waiting on an earlier time is a no-op.
        t.wait_until(s, 0.5);
        let (start2, _) = t.schedule(s, 1.0);
        assert_eq!(start2, 3.0);
    }

    #[test]
    fn cursor_tracks_per_stream_clock() {
        let mut t = Timelines::new();
        let s = t.create_stream();
        t.schedule(StreamId::DEFAULT, 2.0);
        assert_eq!(t.cursor(StreamId::DEFAULT), 2.0);
        assert_eq!(t.cursor(s), 0.0, "other stream untouched");
    }

    #[test]
    fn late_stream_joins_at_the_frontier() {
        let mut t = Timelines::new();
        t.schedule(StreamId::DEFAULT, 4.0);
        let s = t.create_stream();
        assert_eq!(t.cursor(s), 4.0, "no retroactive work before now");
        let (start, end) = t.schedule(s, 1.0);
        assert_eq!((start, end), (4.0, 5.0));
        assert_eq!(t.elapsed(), 5.0);
    }

    #[test]
    fn reset_zeroes_clocks() {
        let mut t = Timelines::new();
        t.schedule(StreamId::DEFAULT, 4.0);
        t.reset();
        assert_eq!(t.elapsed(), 0.0);
    }
}
