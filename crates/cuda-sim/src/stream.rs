//! Stream timelines: the virtual-time scheduling model.
//!
//! Operations issued to the same stream execute back to back; operations on
//! different streams overlap freely (data hazards are the caller's
//! responsibility, as in CUDA) — *except* where they meet at a shared
//! resource such as the host's PCIe bus, which is arbitrated by the
//! discrete-event engine (see [`crate::sim`]). [`Timelines::elapsed`] is
//! the overlapped makespan — with everything on the default stream it
//! equals the serial `comm + compute` sum, and with a double-buffered
//! two-stream pipeline it approaches `max(comm, compute)` plus whatever
//! bus contention adds back, which is precisely the ablation the paper's
//! related-work section motivates.
//!
//! Each stream is a **serial resource** on the device's engine; this type
//! is the device-facing handle mapping dense [`StreamId`]s onto engine
//! resources.

use std::sync::Arc;

use crate::sim::{Engine, ResourceId};

/// Identifies a stream on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// The default stream every device starts with.
    pub const DEFAULT: StreamId = StreamId(0);

    /// Index for reports.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-stream virtual clocks, backed by serial resources on a
/// discrete-event [`Engine`].
#[derive(Debug)]
pub struct Timelines {
    engine: Arc<Engine>,
    /// Engine-local actor tag of the owning device.
    owner: u64,
    streams: Vec<ResourceId>,
}

impl Timelines {
    /// Fresh set containing only the default stream.
    pub fn new(engine: Arc<Engine>, owner: u64) -> Timelines {
        let default = engine.serial("stream0");
        Timelines {
            engine,
            owner,
            streams: vec![default],
        }
    }

    /// Add a stream, starting "now" (at the current makespan, as if created
    /// after the preceding work was enqueued). A stream created mid-run
    /// cannot retroactively run work before the frontier — this is what
    /// makes sequential engine invocations on one device (multi-GPU
    /// failover rounds) accumulate makespan instead of overlapping at t=0.
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(self.streams.len());
        let res = self.engine.serial(&format!("stream{}", id.0));
        self.engine.serial_set(res, self.elapsed());
        self.streams.push(res);
        id
    }

    /// Number of streams.
    pub fn count(&self) -> usize {
        self.streams.len()
    }

    fn res(&self, stream: StreamId) -> ResourceId {
        self.streams[stream.0]
    }

    /// Schedule an operation of `duration` on `stream`; returns its
    /// `(start, end)` interval. Panics on an unknown stream id (programmer
    /// error, like using a destroyed `cudaStream_t`).
    pub fn schedule(&mut self, stream: StreamId, duration: f64) -> (f64, f64) {
        self.schedule_labeled(stream, duration, "op")
    }

    /// [`schedule`](Self::schedule) with an explicit journal label.
    pub fn schedule_labeled(
        &mut self,
        stream: StreamId,
        duration: f64,
        label: &'static str,
    ) -> (f64, f64) {
        self.engine
            .serial_advance(self.res(stream), self.owner, label, duration)
    }

    /// Make `stream` wait until `time` (an event dependency).
    pub fn wait_until(&mut self, stream: StreamId, time: f64) {
        self.engine.serial_wait_until(self.res(stream), time);
    }

    /// Current clock of one stream: when its last enqueued operation ends.
    /// Used by retry backoff to reason about idle time it injects.
    pub fn cursor(&self, stream: StreamId) -> f64 {
        self.engine.serial_cursor(self.res(stream))
    }

    /// Overlapped makespan: when the last stream goes idle.
    pub fn elapsed(&self) -> f64 {
        self.streams
            .iter()
            .map(|&r| self.engine.serial_cursor(r))
            .fold(0.0, f64::max)
    }

    /// Device-wide barrier: all streams advance to the makespan.
    pub fn synchronize(&mut self) -> f64 {
        let t = self.elapsed();
        for &r in &self.streams {
            self.engine.serial_set(r, t);
        }
        t
    }

    /// Reset to a fresh timeline set: non-default streams are **destroyed**
    /// (their [`StreamId`]s become stale, exactly like a freed
    /// `cudaStream_t`) and the default stream's clock returns to zero.
    /// Without the destruction a long-lived device leaked one timeline per
    /// stream per run — `reconstruct_pipelined` creates three streams every
    /// invocation.
    pub fn reset(&mut self) {
        for res in self.streams.drain(1..) {
            self.engine.free(res);
        }
        self.engine.serial_set(self.streams[0], 0.0);
    }
}

impl Drop for Timelines {
    fn drop(&mut self) {
        // Return the engine slots so a long-lived shared host does not
        // accumulate dead stream resources as devices come and go.
        for res in self.streams.drain(..) {
            self.engine.free(res);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Timelines {
        Timelines::new(Arc::new(Engine::new()), 0)
    }

    #[test]
    fn single_stream_serializes() {
        let mut t = fresh();
        let (s1, e1) = t.schedule(StreamId::DEFAULT, 2.0);
        let (s2, e2) = t.schedule(StreamId::DEFAULT, 3.0);
        assert_eq!((s1, e1), (0.0, 2.0));
        assert_eq!((s2, e2), (2.0, 5.0));
        assert_eq!(t.elapsed(), 5.0);
    }

    #[test]
    fn two_streams_overlap() {
        let mut t = fresh();
        let s = t.create_stream();
        t.schedule(StreamId::DEFAULT, 2.0);
        t.schedule(s, 3.0);
        assert_eq!(t.elapsed(), 3.0, "copy and compute overlap");
    }

    #[test]
    fn synchronize_is_a_barrier() {
        let mut t = fresh();
        let s = t.create_stream();
        t.schedule(StreamId::DEFAULT, 2.0);
        t.schedule(s, 5.0);
        let when = t.synchronize();
        assert_eq!(when, 5.0);
        // Work after the barrier starts at the barrier on every stream.
        let (start, _) = t.schedule(StreamId::DEFAULT, 1.0);
        assert_eq!(start, 5.0);
    }

    #[test]
    fn wait_until_orders_dependencies() {
        let mut t = fresh();
        let s = t.create_stream();
        let (_, copy_done) = t.schedule(StreamId::DEFAULT, 2.0);
        t.wait_until(s, copy_done); // kernel on s consumes the copy
        let (start, _) = t.schedule(s, 1.0);
        assert_eq!(start, 2.0);
        // Waiting on an earlier time is a no-op.
        t.wait_until(s, 0.5);
        let (start2, _) = t.schedule(s, 1.0);
        assert_eq!(start2, 3.0);
    }

    #[test]
    fn cursor_tracks_per_stream_clock() {
        let mut t = fresh();
        let s = t.create_stream();
        t.schedule(StreamId::DEFAULT, 2.0);
        assert_eq!(t.cursor(StreamId::DEFAULT), 2.0);
        assert_eq!(t.cursor(s), 0.0, "other stream untouched");
    }

    #[test]
    fn late_stream_joins_at_the_frontier() {
        let mut t = fresh();
        t.schedule(StreamId::DEFAULT, 4.0);
        let s = t.create_stream();
        assert_eq!(t.cursor(s), 4.0, "no retroactive work before now");
        let (start, end) = t.schedule(s, 1.0);
        assert_eq!((start, end), (4.0, 5.0));
        assert_eq!(t.elapsed(), 5.0);
    }

    #[test]
    fn reset_zeroes_clocks() {
        let mut t = fresh();
        t.schedule(StreamId::DEFAULT, 4.0);
        t.reset();
        assert_eq!(t.elapsed(), 0.0);
    }

    #[test]
    fn reset_destroys_extra_streams() {
        let mut t = fresh();
        let s = t.create_stream();
        t.schedule(s, 1.0);
        assert_eq!(t.count(), 2);
        t.reset();
        assert_eq!(t.count(), 1, "only the default stream survives");
        // Re-created streams reuse the engine slot instead of leaking one
        // per run.
        for _ in 0..10 {
            let s = t.create_stream();
            t.schedule(s, 1.0);
            t.reset();
        }
        assert_eq!(t.count(), 1);
        // The old id is stale now: using it must panic, like a destroyed
        // cudaStream_t.
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.cursor(s);
        }));
        assert!(stale.is_err());
    }
}
