//! Device and host performance models.
//!
//! The simulator separates *what work a kernel did* (the [`Cost`] meters)
//! from *how long that work takes* on a given machine. `DeviceProps` and
//! `HostProps` hold the machine parameters and convert costs to seconds with
//! a roofline-style model: execution time is the maximum of the compute
//! time, the memory time, and the serialized-atomics time, plus fixed
//! overheads.
//!
//! The presets are calibrated from the published specs of the paper's
//! evaluation node: an NVIDIA Tesla M2070 (Fermi, 6 GB, 515 DP GFLOP/s,
//! 150 GB/s, PCIe gen-2 ×16 ≈ 8 GB/s) and a 4-core Xeon E5630 at 2.53 GHz.

use crate::meter::Cost;

/// How simulated kernel threads are executed on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run every simulated thread on the calling thread, in a fixed order.
    /// Fully deterministic, including floating-point accumulation order.
    Sequential,
    /// Run blocks across `n` host worker threads (std scoped threads).
    /// Functionally equivalent; atomic accumulation order may differ.
    Threaded(usize),
}

/// Performance-relevant properties of the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Marketing name, for reports.
    pub name: String,
    /// Modeled device memory capacity in bytes.
    pub total_mem: u64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Execution lanes (CUDA cores) per SM.
    pub lanes_per_sm: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Double-precision floating point operations per lane per cycle.
    pub dp_flops_per_lane_cycle: f64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Host↔device (PCIe) bandwidth, bytes/s.
    pub pcie_bw: f64,
    /// Fixed latency per host↔device transfer, seconds.
    pub pcie_latency: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub launch_overhead: f64,
    /// Time for one serialized atomic RMW on device memory, seconds.
    pub atomic_op_time: f64,
    /// On-chip shared memory available to one block, bytes.
    pub shared_mem_per_block: u64,
    /// Aggregate shared-memory bandwidth, bytes/s (all SMs; an order of
    /// magnitude above device memory on every generation).
    pub shared_bw: f64,
    /// Time for one serialized shared-memory atomic RMW, seconds (shared
    /// atomics resolve in the SM, far cheaper than global ones).
    pub shared_atomic_op_time: f64,
    /// Hardware limit: threads per block.
    pub max_threads_per_block: u64,
    /// Hardware limit: block dimensions.
    pub max_block_dim: [u64; 3],
    /// Hardware limit: grid dimensions.
    pub max_grid_dim: [u64; 3],
}

impl DeviceProps {
    /// The paper's evaluation GPU: Tesla M2070 (Fermi GF100).
    ///
    /// 6 GB GDDR5, 14 SMs × 32 lanes at 1.15 GHz, 515 GFLOP/s double
    /// precision, ~150 GB/s memory bandwidth, PCIe gen-2 ×16 host link.
    /// Block/grid limits are the values quoted in the paper's §IV
    /// (1024 threads/block, 1024×1024×64 block, 65535×65535×1 grid).
    pub fn tesla_m2070() -> DeviceProps {
        DeviceProps {
            name: "Tesla M2070 (simulated)".into(),
            total_mem: 6 * 1024 * 1024 * 1024,
            sm_count: 14,
            lanes_per_sm: 32,
            clock_hz: 1.15e9,
            dp_flops_per_lane_cycle: 1.0, // 14*32*1.15e9 ≈ 515 DP GFLOP/s
            mem_bw: 150.0e9,
            pcie_bw: 8.0e9,
            pcie_latency: 10.0e-6,
            launch_overhead: 7.0e-6,
            // Fermi-era global-atomic throughput: ~0.5 G spread-address
            // RMWs/s device-wide → ~30 ns per op per SM with 14 SMs.
            atomic_op_time: 30.0e-9,
            // Fermi: 48 KB shared + 16 KB L1 per SM (the 48/16 split).
            shared_mem_per_block: 48 * 1024,
            // 32 banks × 4 B per clock per SM ≈ 147 GB/s × 14 SMs ≈ 2 TB/s;
            // conservative 1 TB/s leaves room for bank conflicts.
            shared_bw: 1.0e12,
            shared_atomic_op_time: 6.0e-9,
            max_threads_per_block: 1024,
            max_block_dim: [1024, 1024, 64],
            max_grid_dim: [65_535, 65_535, 1],
        }
    }

    /// A consumer Fermi card of the same era: GeForce GTX 580.
    ///
    /// 1.5 GB GDDR5, 16 SMs × 32 lanes at 1.544 GHz; consumer Fermi runs
    /// double precision at 1/8 of single → ~198 DP GFLOP/s. Higher memory
    /// bandwidth (192 GB/s) but a quarter of the M2070's capacity — the
    /// "what if the beamline had bought gaming cards" scenario.
    pub fn gtx_580() -> DeviceProps {
        DeviceProps {
            name: "GeForce GTX 580 (simulated)".into(),
            total_mem: 1536 * 1024 * 1024,
            sm_count: 16,
            lanes_per_sm: 32,
            clock_hz: 1.544e9,
            dp_flops_per_lane_cycle: 0.25, // DP throttled to 1/8 of SP
            mem_bw: 192.0e9,
            pcie_bw: 8.0e9,
            pcie_latency: 10.0e-6,
            launch_overhead: 7.0e-6,
            atomic_op_time: 30.0e-9,
            // Same GF100/GF110 SM shared memory as the M2070, slightly
            // faster with the higher core clock.
            shared_mem_per_block: 48 * 1024,
            shared_bw: 1.2e12,
            shared_atomic_op_time: 6.0e-9,
            max_threads_per_block: 1024,
            max_block_dim: [1024, 1024, 64],
            max_grid_dim: [65_535, 65_535, 1],
        }
    }

    /// The next-generation upgrade path: Tesla K40 (Kepler GK110B, 2013).
    ///
    /// 12 GB, 15 SMX × 192 lanes at 745 MHz → 1.43 DP TFLOP/s, 288 GB/s,
    /// PCIe gen-3 ×16 (~12 GB/s), faster atomics, relaxed grid limits.
    pub fn tesla_k40() -> DeviceProps {
        DeviceProps {
            name: "Tesla K40 (simulated)".into(),
            total_mem: 12 * 1024 * 1024 * 1024,
            sm_count: 15,
            lanes_per_sm: 192,
            clock_hz: 745.0e6,
            dp_flops_per_lane_cycle: 2.0 / 3.0, // 64 DP units per 192-lane SMX, 2 flop/FMA
            mem_bw: 288.0e9,
            pcie_bw: 12.0e9,
            pcie_latency: 8.0e-6,
            launch_overhead: 5.0e-6,
            atomic_op_time: 10.0e-9, // Kepler's much faster global atomics
            // GK110B: 64 KB shared/L1 per SMX (48 KB usable per block on
            // real silicon, but the 64 KB carveout is what the whatif
            // scenario cares about), wider banks (8 B mode), on-chip
            // shared atomics.
            shared_mem_per_block: 64 * 1024,
            shared_bw: 2.0e12,
            shared_atomic_op_time: 2.0e-9,
            max_threads_per_block: 1024,
            max_block_dim: [1024, 1024, 64],
            max_grid_dim: [2_147_483_647, 65_535, 65_535],
        }
    }

    /// A deliberately tiny device for tests: 64 KiB of memory, 2 SMs.
    /// Forces the chunking and OOM paths at laptop-scale data sizes.
    pub fn tiny(total_mem: u64) -> DeviceProps {
        DeviceProps {
            name: "tiny test device".into(),
            total_mem,
            sm_count: 2,
            lanes_per_sm: 4,
            clock_hz: 1.0e9,
            dp_flops_per_lane_cycle: 1.0,
            mem_bw: 10.0e9,
            pcie_bw: 1.0e9,
            pcie_latency: 1.0e-6,
            launch_overhead: 1.0e-6,
            atomic_op_time: 100.0e-9,
            // Small on purpose: 8 KiB forces the privatized-accumulation
            // fallback paths at test scale just as 64 KiB of device memory
            // forces chunking.
            shared_mem_per_block: 8 * 1024,
            shared_bw: 40.0e9,
            shared_atomic_op_time: 20.0e-9,
            max_threads_per_block: 256,
            max_block_dim: [256, 256, 64],
            // Relaxed (Kepler-style) grid limits: the tiny device is a test
            // vehicle, not a Fermi model; only the M2070 preset keeps the
            // historical z = 1 grid restriction.
            max_grid_dim: [65_535, 65_535, 65_535],
        }
    }

    /// Peak double-precision throughput, FLOP/s.
    pub fn peak_dp_flops(&self) -> f64 {
        self.sm_count as f64
            * self.lanes_per_sm as f64
            * self.clock_hz
            * self.dp_flops_per_lane_cycle
    }

    /// Time for one host↔device transfer of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.pcie_latency + bytes as f64 / self.pcie_bw
    }

    /// Modeled duration of a coalesced transaction staging several copies:
    /// `max(latency over the copies) + Σ bytes / bw`. The link latency is
    /// uniform per device, so the max term collapses to `pcie_latency` —
    /// the batch pays it once instead of once per copy.
    pub fn transfer_time_batched(&self, total_bytes: u64) -> f64 {
        self.pcie_latency + total_bytes as f64 / self.pcie_bw
    }

    /// Occupancy factor for a kernel that reserves `shared_request` bytes
    /// of shared memory per block: how much of the device's throughput the
    /// launch can actually use, in (0, 1].
    ///
    /// With fewer concurrent blocks per SM there is less latency hiding;
    /// the model takes 4 resident blocks per SM as enough to saturate and
    /// scales down linearly below that. A kernel that requests no shared
    /// memory is unconstrained (factor 1).
    pub fn occupancy(&self, shared_request: u64) -> f64 {
        if shared_request == 0 {
            return 1.0;
        }
        let resident = (self.shared_mem_per_block / shared_request).max(1) as f64;
        (resident / 4.0).min(1.0)
    }

    /// Roofline kernel time for metered work.
    ///
    /// `flops / peak` and `mem_bytes / bandwidth` bound throughput; atomics
    /// add both a throughput term and a serialization term — the longest
    /// same-address chain (`max_bucket`) executes strictly one at a time.
    /// Shared-memory traffic and shared atomics get their own (much
    /// cheaper) throughput terms, and a large per-block shared-memory
    /// request lowers occupancy, inflating every throughput term (but not
    /// the serialization term, which is latency- not parallelism-bound).
    pub fn kernel_time(&self, cost: &Cost) -> f64 {
        let occupancy = self.occupancy(cost.shared_request);
        let compute = cost.flops as f64 / (self.peak_dp_flops() * occupancy);
        let memory = cost.mem_bytes as f64 / (self.mem_bw * occupancy);
        let shared = cost.shared_bytes as f64 / (self.shared_bw * occupancy);
        let atomic_throughput =
            cost.atomic_ops as f64 * self.atomic_op_time / (self.sm_count as f64);
        let shared_atomic_throughput =
            cost.shared_atomic_ops as f64 * self.shared_atomic_op_time / (self.sm_count as f64);
        let atomic_serial = cost.atomic_max_chain as f64 * self.atomic_op_time;
        self.launch_overhead
            + compute
                .max(memory)
                .max(shared)
                .max(atomic_throughput)
                .max(shared_atomic_throughput)
                .max(atomic_serial)
    }
}

/// Performance-relevant properties of the host CPU used for the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProps {
    /// Marketing name, for reports.
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Double-precision FLOPs per core per cycle (SIMD width × issue).
    pub dp_flops_per_core_cycle: f64,
    /// Peak-to-scalar slowdown of non-vectorised code (the reconstruction
    /// loop is scalar); ≥ 1.
    pub scalar_penalty: f64,
    /// Memory bandwidth, bytes/s.
    pub mem_bw: f64,
}

impl HostProps {
    /// The paper's evaluation CPU: one 4-core Xeon E5630 (Westmere-EP,
    /// 2.53 GHz, SSE2 → 4 DP FLOP/cycle, ~25 GB/s tri-channel DDR3).
    pub fn xeon_e5630() -> HostProps {
        HostProps {
            name: "Xeon E5630 (modeled)".into(),
            cores: 4,
            clock_hz: 2.53e9,
            dp_flops_per_core_cycle: 4.0,
            // Scalar DP code on Westmere sustains ≈ 2 FLOP/cycle (add+mul
            // ports, no SSE width) → half the 4 FLOP/cycle SIMD peak.
            scalar_penalty: 2.0,
            mem_bw: 25.0e9,
        }
    }

    /// Peak double-precision throughput with `cores_used` cores, FLOP/s.
    pub fn peak_dp_flops(&self, cores_used: u32) -> f64 {
        cores_used.min(self.cores) as f64 * self.clock_hz * self.dp_flops_per_core_cycle
    }

    /// Roofline time for metered work on `cores_used` cores.
    ///
    /// The sequential baseline of the paper uses `cores_used = 1`. A scalar
    /// (non-SIMD) reconstruction loop does not reach the SIMD peak, so the
    /// model divides peak by [`scalar_penalty`](Self::scalar_penalty).
    pub fn kernel_time(&self, cost: &Cost, cores_used: u32) -> f64 {
        let compute = cost.flops as f64 * self.scalar_penalty / self.peak_dp_flops(cores_used);
        let memory = cost.mem_bytes as f64 / self.mem_bw;
        compute.max(memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2070_matches_published_specs() {
        let d = DeviceProps::tesla_m2070();
        // 515 GFLOP/s DP within 1%.
        assert!((d.peak_dp_flops() - 515.2e9).abs() / 515.2e9 < 0.01);
        assert_eq!(d.total_mem, 6 * 1024 * 1024 * 1024);
        assert_eq!(d.max_threads_per_block, 1024);
        assert_eq!(d.max_grid_dim, [65_535, 65_535, 1]);
        // Fermi shared memory: 48 KB per block, far cheaper than global.
        assert_eq!(d.shared_mem_per_block, 48 * 1024);
        assert!(d.shared_bw > 5.0 * d.mem_bw);
        assert!(d.shared_atomic_op_time < d.atomic_op_time / 2.0);
    }

    #[test]
    fn alternative_presets_match_published_specs() {
        let gtx = DeviceProps::gtx_580();
        // ~198 DP GFLOP/s within 2 %.
        assert!((gtx.peak_dp_flops() - 197.6e9).abs() / 197.6e9 < 0.02);
        let k40 = DeviceProps::tesla_k40();
        // ~1.43 DP TFLOP/s within 2 %.
        assert!((k40.peak_dp_flops() - 1.43e12).abs() / 1.43e12 < 0.02);
        assert!(k40.total_mem > DeviceProps::tesla_m2070().total_mem);
        assert!(gtx.total_mem < DeviceProps::tesla_m2070().total_mem);
        // Kepler: larger shared memory, much faster shared atomics.
        let m2070 = DeviceProps::tesla_m2070();
        assert!(k40.shared_mem_per_block > m2070.shared_mem_per_block);
        assert!(k40.shared_atomic_op_time < m2070.shared_atomic_op_time);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let d = DeviceProps::tesla_m2070();
        let t1 = d.transfer_time(1 << 20);
        let t2 = d.transfer_time(1 << 24);
        assert!(t2 > t1);
        // Latency dominates tiny transfers.
        assert!((d.transfer_time(1) - d.pcie_latency) / d.pcie_latency < 0.01);
    }

    #[test]
    fn kernel_time_is_roofline() {
        let d = DeviceProps::tesla_m2070();
        // Pure compute: 515 GFLOP should take ~1 s.
        let c = Cost {
            flops: 515_200_000_000,
            ..Cost::default()
        };
        let t = d.kernel_time(&c);
        assert!((t - 1.0).abs() < 0.01, "{t}");
        // Memory-bound kernel: 150 GB at 150 GB/s ≈ 1 s.
        let c = Cost {
            mem_bytes: 150_000_000_000,
            ..Cost::default()
        };
        assert!((d.kernel_time(&c) - 1.0).abs() < 0.01);
        // Max, not sum.
        let c = Cost {
            flops: 515_200_000_000,
            mem_bytes: 75_000_000_000,
            ..Cost::default()
        };
        assert!((d.kernel_time(&c) - 1.0).abs() < 0.02);
    }

    #[test]
    fn atomic_serialization_dominates_hot_addresses() {
        let d = DeviceProps::tesla_m2070();
        let spread = Cost {
            atomic_ops: 10_000,
            atomic_max_chain: 10,
            ..Cost::default()
        };
        let hot = Cost {
            atomic_ops: 10_000,
            atomic_max_chain: 10_000,
            ..Cost::default()
        };
        assert!(d.kernel_time(&hot) > 5.0 * d.kernel_time(&spread));
    }

    #[test]
    fn shared_memory_traffic_is_cheaper_than_global() {
        let d = DeviceProps::tesla_m2070();
        let global = Cost {
            mem_bytes: 10_000_000_000,
            ..Cost::default()
        };
        let shared = Cost {
            shared_bytes: 10_000_000_000,
            ..Cost::default()
        };
        assert!(d.kernel_time(&global) > 5.0 * d.kernel_time(&shared));
        // Same for atomics: shared RMWs resolve in the SM.
        let global = Cost {
            atomic_ops: 10_000_000,
            ..Cost::default()
        };
        let shared = Cost {
            shared_atomic_ops: 10_000_000,
            ..Cost::default()
        };
        assert!(d.kernel_time(&global) > 2.0 * d.kernel_time(&shared));
    }

    #[test]
    fn big_shared_requests_cost_occupancy() {
        let d = DeviceProps::tesla_m2070();
        assert_eq!(d.occupancy(0), 1.0);
        // 4+ resident blocks saturate.
        assert_eq!(d.occupancy(d.shared_mem_per_block / 4), 1.0);
        assert_eq!(d.occupancy(d.shared_mem_per_block / 8), 1.0);
        // One resident block: quarter throughput.
        assert!((d.occupancy(d.shared_mem_per_block) - 0.25).abs() < 1e-12);
        // Occupancy inflates throughput-bound kernel time proportionally.
        let light = Cost {
            flops: 515_200_000_000,
            shared_request: d.shared_mem_per_block / 4,
            ..Cost::default()
        };
        let heavy = Cost {
            shared_request: d.shared_mem_per_block,
            ..light
        };
        let ratio = (d.kernel_time(&heavy) - d.launch_overhead)
            / (d.kernel_time(&light) - d.launch_overhead);
        assert!((ratio - 4.0).abs() < 0.01, "{ratio}");
        // ...but not the latency-bound atomic serialization term.
        let chain = Cost {
            atomic_max_chain: 1_000_000,
            shared_request: d.shared_mem_per_block,
            ..Cost::default()
        };
        let free = Cost {
            shared_request: 0,
            ..chain
        };
        assert_eq!(d.kernel_time(&chain), d.kernel_time(&free));
    }

    #[test]
    fn host_model_speedup_with_cores() {
        let h = HostProps::xeon_e5630();
        let c = Cost {
            flops: 10_000_000_000,
            ..Cost::default()
        };
        let t1 = h.kernel_time(&c, 1);
        let t4 = h.kernel_time(&c, 4);
        assert!((t1 / t4 - 4.0).abs() < 0.01);
        // Asking for more cores than exist clamps.
        assert_eq!(h.kernel_time(&c, 64), t4);
    }

    #[test]
    fn gpu_beats_scalar_cpu_on_compute_bound_work() {
        // The headline premise of the paper: for compute-heavy kernels the
        // modeled M2070 is much faster than one Xeon core.
        let d = DeviceProps::tesla_m2070();
        let h = HostProps::xeon_e5630();
        let c = Cost {
            flops: 1_000_000_000_000,
            ..Cost::default()
        };
        let ratio = h.kernel_time(&c, 1) / d.kernel_time(&c);
        assert!(ratio > 50.0, "modeled GPU/CPU ratio {ratio}");
    }
}
