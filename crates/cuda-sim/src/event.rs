//! CUDA-style events: timestamps recorded into a stream's timeline, used
//! for timing sections and for cross-stream dependencies.

/// A recorded event: the virtual time at which all work enqueued on its
/// stream before the record had completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub(crate) time_s: f64,
}

impl Event {
    /// The virtual timestamp.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Seconds from `earlier` to `self` (CUDA's `cudaEventElapsedTime`,
    /// but in seconds). Negative when `self` precedes `earlier`.
    pub fn elapsed_since(&self, earlier: &Event) -> f64 {
        self.time_s - earlier.time_s
    }
}

#[cfg(test)]
mod tests {

    use crate::{Device, DeviceProps, LaunchConfig};

    #[test]
    fn events_time_sections() {
        let d = Device::new(DeviceProps::tiny(1 << 16));
        let start = d.record_event(crate::StreamId::DEFAULT);
        d.launch("work", LaunchConfig::linear(64, 32), |ctx| {
            ctx.charge_flops(1_000_000);
        })
        .unwrap();
        let end = d.record_event(crate::StreamId::DEFAULT);
        let dt = end.elapsed_since(&start);
        assert!(dt > 0.0);
        // The section matches the launch record's duration.
        let rec = &d.records()[0];
        assert!((dt - rec.duration_s).abs() < 1e-12);
    }

    #[test]
    fn cross_stream_event_wait() {
        let d = Device::new(DeviceProps::tiny(1 << 16));
        let s = d.create_stream();
        d.launch("producer", LaunchConfig::linear(64, 32), |ctx| {
            ctx.charge_flops(5_000_000);
        })
        .unwrap();
        let done = d.record_event(crate::StreamId::DEFAULT);
        d.stream_wait_event(s, &done);
        let rec = d
            .launch_on(s, "consumer", LaunchConfig::linear(8, 8), |_| {})
            .unwrap();
        assert!(
            rec.start_s >= done.time_s(),
            "consumer starts after the event"
        );
    }
}
