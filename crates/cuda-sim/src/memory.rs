//! Device memory: typed buffers in a separate address space.
//!
//! Every buffer's payload lives in a host-side slab of `AtomicU64` words —
//! one element per word — so simulated threads can race on it safely while
//! staying in entirely safe Rust. *Capacity accounting is separate from
//! storage*: the allocator charges the modeled element size
//! (`DeviceScalar::SIZE`), which is what the memory-cap and transfer models
//! see, regardless of how the simulator chooses to back the data.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::alloc::Allocator;

/// Scalars storable in device buffers.
pub trait DeviceScalar: Copy + Default + Send + Sync + 'static {
    /// Modeled size in bytes (drives capacity and PCIe accounting).
    const SIZE: u64;
    /// Name for diagnostics.
    const NAME: &'static str;
    /// Pack into a storage word.
    fn to_word(self) -> u64;
    /// Unpack from a storage word.
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $size:expr, $name:expr, $to:expr, $from:expr) => {
        impl DeviceScalar for $t {
            const SIZE: u64 = $size;
            const NAME: &'static str = $name;
            #[inline]
            fn to_word(self) -> u64 {
                ($to)(self)
            }
            #[inline]
            fn from_word(w: u64) -> Self {
                ($from)(w)
            }
        }
    };
}

impl_scalar!(
    f64,
    8,
    "f64",
    |v: f64| v.to_bits(),
    |w: u64| f64::from_bits(w)
);
impl_scalar!(f32, 4, "f32", |v: f32| v.to_bits() as u64, |w: u64| {
    f32::from_bits(w as u32)
});
impl_scalar!(u64, 8, "u64", |v: u64| v, |w: u64| w);
impl_scalar!(u32, 4, "u32", |v: u32| v as u64, |w: u64| w as u32);
impl_scalar!(i32, 4, "i32", |v: i32| v as u32 as u64, |w: u64| w as u32
    as i32);
impl_scalar!(u16, 2, "u16", |v: u16| v as u64, |w: u64| w as u16);
impl_scalar!(u8, 1, "u8", |v: u8| v as u64, |w: u64| w as u8);

/// RAII registration of an address range with the device allocator.
#[derive(Debug)]
pub(crate) struct Allocation {
    pub(crate) addr: u64,
    pub(crate) bytes: u64,
    pub(crate) allocator: Arc<Mutex<Allocator>>,
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.allocator.lock().free(self.addr);
    }
}

/// A typed buffer in simulated device memory.
///
/// Cloning a handle aliases the same device memory (like copying a CUDA
/// device pointer); the allocation is released when the last handle drops
/// or when [`crate::Device::free`] consumes it.
#[derive(Debug, Clone)]
pub struct DeviceBuffer<T: DeviceScalar> {
    pub(crate) words: Arc<[AtomicU64]>,
    pub(crate) allocation: Arc<Allocation>,
    pub(crate) device_id: u64,
    pub(crate) len: usize,
    _marker: PhantomData<T>,
}

impl<T: DeviceScalar> DeviceBuffer<T> {
    pub(crate) fn new(len: usize, allocation: Allocation, device_id: u64) -> DeviceBuffer<T> {
        let words: Arc<[AtomicU64]> = (0..len).map(|_| AtomicU64::new(0)).collect();
        DeviceBuffer {
            words,
            allocation: Arc::new(allocation),
            device_id,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements (never constructed in
    /// practice; allocations are non-empty).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Modeled size in bytes (what the allocator and PCIe model charge).
    pub fn modeled_bytes(&self) -> u64 {
        self.len as u64 * T::SIZE
    }

    /// Modeled device address (for diagnostics).
    pub fn device_addr(&self) -> u64 {
        self.allocation.addr
    }

    /// Bytes this buffer holds against the device capacity (includes no
    /// alignment padding; the allocator rounds internally).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocation.bytes
    }

    /// Raw load (device-side; kernels use [`crate::ThreadCtx::read`], which
    /// also meters the traffic).
    #[inline]
    pub(crate) fn load(&self, i: usize) -> T {
        T::from_word(self.words[i].load(Ordering::Relaxed))
    }

    /// Raw store (device-side).
    #[inline]
    pub(crate) fn store(&self, i: usize, v: T) {
        self.words[i].store(v.to_word(), Ordering::Relaxed);
    }

    /// Atomic slot accessor for CAS loops.
    #[inline]
    pub(crate) fn word(&self, i: usize) -> &AtomicU64 {
        &self.words[i]
    }

    /// Scribble a recognisable garbage pattern over every element: a failed
    /// DMA may have written any prefix, so fault injection poisons the whole
    /// buffer to guarantee a retry that "worked" only because the data
    /// survived from a partial copy cannot pass silently.
    pub(crate) fn poison(&self) {
        for w in self.words.iter() {
            w.store(0xDEAD_BEEF_DEAD_BEEF, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_allocation(bytes: u64) -> Allocation {
        let alloc = Arc::new(Mutex::new(Allocator::new(1 << 20)));
        let addr = alloc.lock().alloc(bytes).unwrap();
        Allocation {
            addr,
            bytes,
            allocator: alloc,
        }
    }

    #[test]
    fn scalar_round_trips() {
        fn rt<T: DeviceScalar + PartialEq + std::fmt::Debug>(vals: &[T]) {
            for &v in vals {
                assert_eq!(T::from_word(v.to_word()), v);
            }
        }
        rt::<f64>(&[0.0, -1.5, std::f64::consts::PI, f64::MAX, 5e-324]);
        rt::<f32>(&[0.0, -2.5, f32::MAX]);
        rt::<u64>(&[0, u64::MAX]);
        rt::<u32>(&[0, u32::MAX]);
        rt::<i32>(&[i32::MIN, -1, 0, i32::MAX]);
        rt::<u16>(&[0, u16::MAX]);
        rt::<u8>(&[0, 255]);
    }

    #[test]
    fn negative_i32_survives_packing() {
        assert_eq!(i32::from_word((-123i32).to_word()), -123);
    }

    #[test]
    fn buffer_load_store() {
        let buf: DeviceBuffer<f64> = DeviceBuffer::new(8, test_allocation(64), 1);
        assert_eq!(buf.len(), 8);
        assert!(!buf.is_empty());
        assert_eq!(buf.modeled_bytes(), 64);
        buf.store(3, 2.5);
        assert_eq!(buf.load(3), 2.5);
        assert_eq!(buf.load(0), 0.0, "zero-initialised");
    }

    #[test]
    fn poison_overwrites_every_element() {
        let buf: DeviceBuffer<f64> = DeviceBuffer::new(4, test_allocation(32), 1);
        buf.store(0, 1.0);
        buf.store(3, 4.0);
        buf.poison();
        let garbage = f64::from_bits(0xDEAD_BEEF_DEAD_BEEF);
        for i in 0..4 {
            assert_eq!(buf.load(i).to_bits(), garbage.to_bits());
        }
    }

    #[test]
    fn clone_aliases_same_memory() {
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(4, test_allocation(16), 1);
        let alias = buf.clone();
        buf.store(2, 99);
        assert_eq!(alias.load(2), 99);
    }

    #[test]
    fn drop_releases_allocation() {
        let alloc = Arc::new(Mutex::new(Allocator::new(1 << 20)));
        let addr = alloc.lock().alloc(64).unwrap();
        let allocation = Allocation {
            addr,
            bytes: 64,
            allocator: Arc::clone(&alloc),
        };
        let buf: DeviceBuffer<u8> = DeviceBuffer::new(64, allocation, 1);
        assert!(alloc.lock().used() > 0);
        let alias = buf.clone();
        drop(buf);
        assert!(alloc.lock().used() > 0, "alias keeps allocation live");
        drop(alias);
        assert_eq!(alloc.lock().used(), 0);
    }
}
