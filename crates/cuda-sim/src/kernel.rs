//! Kernel launch geometry and the per-thread execution context.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::SimError;
use crate::memory::{DeviceBuffer, DeviceScalar};
use crate::meter::{ChainEstimator, Cost};
use crate::props::DeviceProps;

/// CUDA-style 3-component extent or index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    pub x: u64,
    pub y: u64,
    pub z: u64,
}

impl Dim3 {
    /// `(x, y, z)` extent.
    pub const fn new(x: u64, y: u64, z: u64) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// 1-D extent `(n, 1, 1)`.
    pub const fn linear(n: u64) -> Dim3 {
        Dim3 { x: n, y: 1, z: 1 }
    }

    /// Total element count.
    pub const fn count(self) -> u64 {
        self.x * self.y * self.z
    }
}

/// A kernel launch configuration: grid of blocks, block of threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
}

impl LaunchConfig {
    /// Build a configuration.
    pub const fn new(grid: Dim3, block: Dim3) -> LaunchConfig {
        LaunchConfig { grid, block }
    }

    /// 1-D helper: enough `block_size`-wide blocks to cover `n` threads.
    pub const fn linear(n: u64, block_size: u64) -> LaunchConfig {
        let blocks = n.div_ceil(block_size);
        LaunchConfig {
            grid: Dim3::linear(blocks),
            block: Dim3::linear(block_size),
        }
    }

    /// Cover a 3-D domain `(x, y, z)` with blocks of shape `block`, exactly
    /// like the paper's `(rows, cols, images)` thread mapping.
    pub const fn cover(domain: Dim3, block: Dim3) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3 {
                x: domain.x.div_ceil(block.x),
                y: domain.y.div_ceil(block.y),
                z: domain.z.div_ceil(block.z),
            },
            block,
        }
    }

    /// Total simulated threads.
    pub const fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }

    /// Validate against the device's hardware limits.
    pub fn validate(&self, props: &DeviceProps) -> Result<(), SimError> {
        if self.grid.count() == 0 || self.block.count() == 0 {
            return Err(SimError::InvalidLaunch("empty grid or block".into()));
        }
        if self.block.count() > props.max_threads_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "{} threads per block exceeds limit {}",
                self.block.count(),
                props.max_threads_per_block
            )));
        }
        let b = [self.block.x, self.block.y, self.block.z];
        let g = [self.grid.x, self.grid.y, self.grid.z];
        for axis in 0..3 {
            if b[axis] > props.max_block_dim[axis] {
                return Err(SimError::InvalidLaunch(format!(
                    "block dim {axis} = {} exceeds limit {}",
                    b[axis], props.max_block_dim[axis]
                )));
            }
            if g[axis] > props.max_grid_dim[axis] {
                return Err(SimError::InvalidLaunch(format!(
                    "grid dim {axis} = {} exceeds limit {}",
                    g[axis], props.max_grid_dim[axis]
                )));
            }
        }
        Ok(())
    }
}

/// XOR mask a kernel-flip fault applies to the targeted f64 deposit: the
/// top exponent bit. For |v| < 2 the perturbed deposit becomes huge (or
/// non-finite), for |v| ≥ 2 it collapses towards zero — either way the
/// accumulated sum changes decisively, so a bitwise ABFT comparison always
/// notices a landed flip.
const KERNEL_FLIP_MASK: u64 = 1 << 62;

/// Armed silent-corruption state for one launch (see [`crate::fault`]):
/// flip the `target`-th f64 deposit, counted in execution order across all
/// workers through the shared `counter`. Under the default sequential
/// executor the ordinal is fully deterministic; under
/// [`crate::ExecMode::Threaded`] which deposit it names depends on worker
/// scheduling, but exactly one deposit is perturbed either way.
#[derive(Debug, Clone)]
pub(crate) struct KernelCorrupt {
    pub(crate) target: u64,
    pub(crate) counter: Arc<AtomicU64>,
    pub(crate) fired: Arc<AtomicBool>,
}

impl KernelCorrupt {
    pub(crate) fn new(target: u64) -> KernelCorrupt {
        KernelCorrupt {
            target,
            counter: Arc::new(AtomicU64::new(0)),
            fired: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// Per-worker scratch shared by all threads that worker simulates.
#[derive(Debug)]
pub(crate) struct WorkerState {
    pub cost: Cost,
    pub chain: ChainEstimator,
    pub traces: [u64; crate::meter::TRACE_SLOTS],
    /// Armed deposit flip for this launch (shared across workers), if any.
    pub corrupt: Option<KernelCorrupt>,
}

impl WorkerState {
    pub fn new() -> WorkerState {
        WorkerState {
            cost: Cost::default(),
            chain: ChainEstimator::new(),
            traces: [0; crate::meter::TRACE_SLOTS],
            corrupt: None,
        }
    }
}

/// Execution context handed to every simulated kernel thread.
///
/// Mirrors the implicit CUDA state (`blockIdx`, `threadIdx`, …) and is the
/// only sanctioned way for a kernel to touch device memory — its accessors
/// meter the traffic that the timing model charges.
pub struct ThreadCtx<'a> {
    pub block_idx: Dim3,
    pub thread_idx: Dim3,
    pub grid_dim: Dim3,
    pub block_dim: Dim3,
    pub(crate) state: &'a mut WorkerState,
}

impl ThreadCtx<'_> {
    /// Global 3-D thread id: `blockIdx * blockDim + threadIdx`.
    #[inline]
    pub fn global_id(&self) -> Dim3 {
        Dim3 {
            x: self.block_idx.x * self.block_dim.x + self.thread_idx.x,
            y: self.block_idx.y * self.block_dim.y + self.thread_idx.y,
            z: self.block_idx.z * self.block_dim.z + self.thread_idx.z,
        }
    }

    /// Linearised global id (x fastest, then y, then z).
    #[inline]
    pub fn global_linear(&self) -> u64 {
        let g = self.global_id();
        let nx = self.grid_dim.x * self.block_dim.x;
        let ny = self.grid_dim.y * self.block_dim.y;
        (g.z * ny + g.y) * nx + g.x
    }

    /// Charge `n` floating-point operations to this kernel.
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.state.cost.flops += n;
    }

    /// Charge `n` bytes of device-memory traffic not covered by the typed
    /// accessors (e.g. modeled pointer-table indirections).
    #[inline]
    pub fn charge_mem_bytes(&mut self, n: u64) {
        self.state.cost.mem_bytes += n;
    }

    /// Charge `n` bytes of on-chip shared-memory traffic (the per-block
    /// tile handed out by [`crate::Device::launch_shared_on`]). An order of
    /// magnitude cheaper than device memory in the timing model.
    #[inline]
    pub fn charge_shared_bytes(&mut self, n: u64) {
        self.state.cost.shared_bytes += n;
    }

    /// Charge one shared-memory atomic RMW (8 bytes of shared traffic plus
    /// the SM-local atomic cost). The simulator's shared tiles are mutated
    /// directly by the kernel closure — this meters what that mutation
    /// would cost as a `__shared__` atomic on hardware.
    #[inline]
    pub fn charge_shared_atomic(&mut self) {
        self.state.cost.shared_atomic_ops += 1;
        self.state.cost.shared_bytes += 8;
    }

    /// Increment a free-form trace counter.
    ///
    /// Trace counters are **simulator instrumentation**, not device work:
    /// they cost nothing in the performance model and surface in
    /// [`crate::LaunchRecord::traces`]. The reconstruction engines use them
    /// for outcome statistics that a real kernel would either not collect or
    /// collect with negligible warp-local reductions.
    #[inline]
    pub fn trace(&mut self, slot: usize) {
        self.state.traces[slot] += 1;
    }

    /// Read one element; meters the memory traffic.
    ///
    /// Out-of-bounds access panics — the simulator's equivalent of a device
    /// memory fault.
    #[inline]
    pub fn read<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.state.cost.mem_bytes += T::SIZE;
        buf.load(i)
    }

    /// Write one element; meters the memory traffic. Racy writes to the same
    /// slot have "some thread wins" semantics, as on real hardware.
    #[inline]
    pub fn write<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) {
        self.state.cost.mem_bytes += T::SIZE;
        buf.store(i, v);
    }

    /// `atomicAdd(double)` exactly as the paper implements it: a
    /// compare-and-swap loop over the 64-bit pattern (Fermi-era CUDA had no
    /// native f64 atomicAdd). Returns the value before the addition.
    #[inline]
    pub fn atomic_add_f64(&mut self, buf: &DeviceBuffer<f64>, i: usize, v: f64) -> f64 {
        let mut v = v;
        if let Some(c) = &self.state.corrupt {
            if c.counter.fetch_add(1, Ordering::Relaxed) == c.target {
                v = f64::from_bits(v.to_bits() ^ KERNEL_FLIP_MASK);
                c.fired.store(true, Ordering::Relaxed);
            }
        }
        self.state.cost.atomic_ops += 1;
        self.state.cost.mem_bytes += 8;
        self.state.chain.record(i);
        let slot = buf.word(i);
        let mut old = slot.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match slot.compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f64::from_bits(old),
                Err(actual) => {
                    self.state.cost.atomic_retries += 1;
                    old = actual;
                }
            }
        }
    }

    /// Integer atomic add (native on the device). Returns the prior value.
    #[inline]
    pub fn atomic_add_u64(&mut self, buf: &DeviceBuffer<u64>, i: usize, v: u64) -> u64 {
        self.state.cost.atomic_ops += 1;
        self.state.cost.mem_bytes += 8;
        self.state.chain.record(i);
        buf.word(i).fetch_add(v, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_counts() {
        assert_eq!(Dim3::linear(5).count(), 5);
        assert_eq!(Dim3::new(2, 9, 4).count(), 72, "the paper's Fig 6 example");
    }

    #[test]
    fn linear_config_covers_n() {
        let cfg = LaunchConfig::linear(1000, 256);
        assert_eq!(cfg.grid.x, 4);
        assert!(cfg.total_threads() >= 1000);
    }

    #[test]
    fn cover_matches_paper_example() {
        // 2 rows × 9 cols × 4 images with block (2, 9, 4) → one block.
        let cfg = LaunchConfig::cover(Dim3::new(2, 9, 4), Dim3::new(2, 9, 4));
        assert_eq!(cfg.grid, Dim3::new(1, 1, 1));
        assert_eq!(cfg.total_threads(), 72);
        // Same domain, blocks of (2, 3, 2) → 1×3×2 grid.
        let cfg = LaunchConfig::cover(Dim3::new(2, 9, 4), Dim3::new(2, 3, 2));
        assert_eq!(cfg.grid, Dim3::new(1, 3, 2));
    }

    #[test]
    fn validation_enforces_device_limits() {
        let props = crate::DeviceProps::tesla_m2070();
        assert!(LaunchConfig::linear(1 << 20, 1024).validate(&props).is_ok());
        // Too many threads per block.
        assert!(LaunchConfig::linear(4096, 2048).validate(&props).is_err());
        // Grid z > 1 not allowed on Fermi.
        let cfg = LaunchConfig::new(Dim3::new(1, 1, 2), Dim3::linear(32));
        assert!(cfg.validate(&props).is_err());
        // Block z ≤ 64.
        let cfg = LaunchConfig::new(Dim3::linear(1), Dim3::new(1, 1, 128));
        assert!(cfg.validate(&props).is_err());
        // Empty launch.
        let cfg = LaunchConfig::new(Dim3::new(0, 1, 1), Dim3::linear(32));
        assert!(cfg.validate(&props).is_err());
    }
}
