//! Chrome-trace export of the virtual timeline.
//!
//! [`crate::Device::export_chrome_trace`] renders every transfer and kernel
//! as a complete ("ph":"X") event in the Trace Event Format, so the virtual
//! schedule — including stream overlap — can be inspected in
//! `chrome://tracing` / Perfetto.

use std::collections::VecDeque;

/// One operation on the virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// Operation kind: `"h2d"`, `"d2h"` or `"kernel"`.
    pub kind: &'static str,
    /// Label (kernel name; byte count for copies).
    pub name: String,
    /// Stream index (rendered as the trace "thread").
    pub stream: usize,
    /// Virtual start, seconds.
    pub start_s: f64,
    /// Virtual end, seconds.
    pub end_s: f64,
}

/// Default capacity of the bounded op-trace ring.
pub const DEFAULT_TRACE_CAP: usize = 16_384;

/// How much of the operation log a device keeps.
///
/// Every transfer and launch used to push an eagerly-`format!`-ed
/// [`OpRecord`] into an unbounded `Vec` — a slow memory leak for
/// service-style runs that never reset. The default is now a generous ring
/// (more than any single reconstruction issues, so traces of normal runs
/// are complete) and `Off` skips even the name formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; op names are never formatted.
    Off,
    /// Keep the newest `n` records; older ones fall off the front.
    Ring(usize),
    /// Unbounded log (the old behavior) — for short diagnostic runs only.
    Full,
}

impl Default for TraceMode {
    fn default() -> Self {
        TraceMode::Ring(DEFAULT_TRACE_CAP)
    }
}

/// Bounded operation log behind [`crate::Device::ops`] and the Chrome
/// trace export.
#[derive(Debug)]
pub struct TraceBuf {
    mode: TraceMode,
    ops: VecDeque<OpRecord>,
    dropped: u64,
}

impl TraceBuf {
    /// Empty buffer in the given mode.
    pub fn new(mode: TraceMode) -> TraceBuf {
        TraceBuf {
            mode,
            ops: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Record one operation. `name` is only invoked when the record is
    /// actually kept, so `TraceMode::Off` pays no formatting cost.
    pub fn push_with(
        &mut self,
        kind: &'static str,
        stream: usize,
        start_s: f64,
        end_s: f64,
        name: impl FnOnce() -> String,
    ) {
        match self.mode {
            TraceMode::Off => {
                self.dropped += 1;
                return;
            }
            TraceMode::Ring(cap) => {
                if cap == 0 {
                    self.dropped += 1;
                    return;
                }
                while self.ops.len() >= cap {
                    self.ops.pop_front();
                    self.dropped += 1;
                }
            }
            TraceMode::Full => {}
        }
        self.ops.push_back(OpRecord {
            kind,
            name: name(),
            stream,
            start_s,
            end_s,
        });
    }

    /// Change the mode; an over-full ring sheds its oldest records.
    pub fn set_mode(&mut self, mode: TraceMode) {
        self.mode = mode;
        if let TraceMode::Ring(cap) = mode {
            while self.ops.len() > cap {
                self.ops.pop_front();
                self.dropped += 1;
            }
        }
    }

    /// Records currently held, oldest first.
    pub fn ops(&self) -> Vec<OpRecord> {
        self.ops.iter().cloned().collect()
    }

    /// Records not retained (ring overflow or `Off`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forget everything (meter reset).
    pub fn clear(&mut self) {
        self.ops.clear();
        self.dropped = 0;
    }
}

/// Minimal JSON string escaping for names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render ops as a Trace Event Format JSON document.
pub fn chrome_trace(device_name: &str, ops: &[OpRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    // Process-name metadata record always leads, so every op needs a comma.
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        escape(device_name)
    ));
    for op in ops {
        out.push(',');
        let ts_us = op.start_s * 1e6;
        let dur_us = (op.end_s - op.start_s) * 1e6;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":{}}}",
            escape(&op.name),
            op.kind,
            op.stream
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_buf_ring_bounds_memory_and_counts_drops() {
        let mut t = TraceBuf::new(TraceMode::Ring(2));
        for i in 0..5 {
            t.push_with("h2d", 0, i as f64, i as f64 + 1.0, || format!("op{i}"));
        }
        assert_eq!(t.ops().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.ops()[0].name, "op3", "oldest shed first");
        t.clear();
        assert_eq!(t.ops().len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn trace_buf_off_never_formats() {
        let mut t = TraceBuf::new(TraceMode::Off);
        t.push_with("h2d", 0, 0.0, 1.0, || panic!("name must not be built"));
        assert!(t.ops().is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn trace_buf_mode_change_sheds_overflow() {
        let mut t = TraceBuf::new(TraceMode::Full);
        for i in 0..4 {
            t.push_with("kernel", 0, i as f64, i as f64 + 1.0, || "k".to_string());
        }
        t.set_mode(TraceMode::Ring(1));
        assert_eq!(t.ops().len(), 1);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("nl\n"), "nl\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_document_shape() {
        let ops = vec![
            OpRecord {
                kind: "h2d",
                name: "1024 B".into(),
                stream: 0,
                start_s: 0.0,
                end_s: 1e-5,
            },
            OpRecord {
                kind: "kernel",
                name: "set_two".into(),
                stream: 1,
                start_s: 1e-5,
                end_s: 3e-5,
            },
        ];
        let json = chrome_trace("Tesla M2070 (simulated)", &ops);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"set_two\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"cat\":\"h2d\""));
        assert!(json.contains("Tesla M2070"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
