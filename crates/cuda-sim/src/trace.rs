//! Chrome-trace export of the virtual timeline.
//!
//! [`crate::Device::export_chrome_trace`] renders every transfer and kernel
//! as a complete ("ph":"X") event in the Trace Event Format, so the virtual
//! schedule — including stream overlap — can be inspected in
//! `chrome://tracing` / Perfetto.

/// One operation on the virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// Operation kind: `"h2d"`, `"d2h"` or `"kernel"`.
    pub kind: &'static str,
    /// Label (kernel name; byte count for copies).
    pub name: String,
    /// Stream index (rendered as the trace "thread").
    pub stream: usize,
    /// Virtual start, seconds.
    pub start_s: f64,
    /// Virtual end, seconds.
    pub end_s: f64,
}

/// Minimal JSON string escaping for names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render ops as a Trace Event Format JSON document.
pub fn chrome_trace(device_name: &str, ops: &[OpRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    // Process-name metadata record always leads, so every op needs a comma.
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        escape(device_name)
    ));
    for op in ops {
        out.push(',');
        let ts_us = op.start_s * 1e6;
        let dur_us = (op.end_s - op.start_s) * 1e6;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":{}}}",
            escape(&op.name),
            op.kind,
            op.stream
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("nl\n"), "nl\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_document_shape() {
        let ops = vec![
            OpRecord {
                kind: "h2d",
                name: "1024 B".into(),
                stream: 0,
                start_s: 0.0,
                end_s: 1e-5,
            },
            OpRecord {
                kind: "kernel",
                name: "set_two".into(),
                stream: 1,
                start_s: 1e-5,
                end_s: 3e-5,
            },
        ];
        let json = chrome_trace("Tesla M2070 (simulated)", &ops);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"set_two\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"cat\":\"h2d\""));
        assert!(json.contains("Tesla M2070"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
