//! Fleet-level clock coordination: one shared timeline over many devices.
//!
//! A [`crate::Device`] owns its *own* virtual timeline: every run starts
//! from `reset_meters()` at t = 0 and `synchronize()` reports the run's
//! makespan in isolation. That is the right model for benchmarking one
//! reconstruction, but a multi-tenant service schedules many runs across
//! a fleet of devices over continuous time — job 7 starts on device 2
//! when device 2 *frees up*, not at zero.
//!
//! [`FleetClock`] supplies the missing layer without touching device
//! internals: it keeps a busy-until horizon per device on one shared
//! fleet timeline and maps each measured makespan onto it. The scheduler
//! runs a job (or fused batch) on a device as usual, takes the measured
//! duration, and calls [`FleetClock::dispatch`]; the clock answers when
//! the work started and finished in *fleet* time, honouring both the
//! job's arrival/ready time and the device's previous commitment. Waiting
//! in queue is therefore visible as `start − ready`, and device idle gaps
//! (a device free while no job is ready) accrue naturally when `ready`
//! exceeds the device's horizon.
//!
//! The clock is deliberately sequential-decision: dispatch order is the
//! scheduler's choice, and two identical call sequences produce identical
//! timelines — the same determinism discipline the rest of the simulator
//! keeps, extended to the fleet.

/// One device's occupancy on the shared fleet timeline.
#[derive(Debug, Clone, Copy, Default)]
struct DeviceTrack {
    /// Fleet time until which the device is committed.
    busy_until: f64,
    /// Total busy seconds dispatched to this device.
    busy_s: f64,
    /// Work intervals dispatched (jobs or fused batches).
    dispatches: u64,
}

/// A dispatch decision: when the work ran in fleet time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpan {
    /// Fleet time the work began (max of ready time and device horizon).
    pub start_s: f64,
    /// Fleet time the work completed.
    pub end_s: f64,
}

impl FleetSpan {
    /// Seconds the work spent waiting between ready and start.
    pub fn queued_s(&self, ready_s: f64) -> f64 {
        (self.start_s - ready_s).max(0.0)
    }
}

/// Busy-until horizons for a fleet of devices on one shared timeline.
#[derive(Debug, Clone)]
pub struct FleetClock {
    tracks: Vec<DeviceTrack>,
}

impl FleetClock {
    /// A fleet of `n_devices` idle devices, all horizons at t = 0.
    pub fn new(n_devices: usize) -> FleetClock {
        assert!(n_devices > 0, "a fleet needs at least one device");
        FleetClock {
            tracks: vec![DeviceTrack::default(); n_devices],
        }
    }

    /// Number of devices on the timeline.
    pub fn n_devices(&self) -> usize {
        self.tracks.len()
    }

    /// Commit `duration_s` of work to `device`, no earlier than `ready_s`
    /// (the job's arrival or its resume point after preemption). Returns
    /// the fleet-time interval the work occupies; the device's horizon
    /// advances to its end.
    pub fn dispatch(&mut self, device: usize, ready_s: f64, duration_s: f64) -> FleetSpan {
        assert!(
            duration_s >= 0.0 && ready_s >= 0.0,
            "times must be non-negative"
        );
        let track = &mut self.tracks[device];
        let start_s = track.busy_until.max(ready_s);
        let end_s = start_s + duration_s;
        track.busy_until = end_s;
        track.busy_s += duration_s;
        track.dispatches += 1;
        FleetSpan { start_s, end_s }
    }

    /// Fleet time at which `device` frees up.
    pub fn free_at(&self, device: usize) -> f64 {
        self.tracks[device].busy_until
    }

    /// The device that frees up earliest (ties → lowest index), with its
    /// free time — the scheduler's earliest-finish placement query.
    pub fn earliest_free(&self) -> (usize, f64) {
        self.tracks
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.busy_until))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    }

    /// Latest horizon across the fleet — the service makespan so far.
    pub fn makespan_s(&self) -> f64 {
        self.tracks.iter().fold(0.0f64, |m, t| m.max(t.busy_until))
    }

    /// Busy seconds dispatched to `device`.
    pub fn busy_s(&self, device: usize) -> f64 {
        self.tracks[device].busy_s
    }

    /// Work intervals dispatched to `device`.
    pub fn dispatches(&self, device: usize) -> u64 {
        self.tracks[device].dispatches
    }

    /// Fleet-wide utilization so far: busy device-seconds over available
    /// device-seconds (`makespan × n_devices`). 0 when nothing ran.
    pub fn utilization(&self) -> f64 {
        let makespan = self.makespan_s();
        if makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.tracks.iter().map(|t| t.busy_s).sum();
        busy / (makespan * self.tracks.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_honours_ready_time_and_device_horizon() {
        let mut fleet = FleetClock::new(2);
        // Idle device, ready at 5: starts exactly at ready.
        let a = fleet.dispatch(0, 5.0, 2.0);
        assert_eq!((a.start_s, a.end_s), (5.0, 7.0));
        assert_eq!(a.queued_s(5.0), 0.0);
        // Same device, ready earlier than the horizon: queued behind it.
        let b = fleet.dispatch(0, 1.0, 1.0);
        assert_eq!((b.start_s, b.end_s), (7.0, 8.0));
        assert_eq!(b.queued_s(1.0), 6.0);
        // Other device is still idle.
        let c = fleet.dispatch(1, 1.0, 1.0);
        assert_eq!((c.start_s, c.end_s), (1.0, 2.0));
        assert_eq!(fleet.makespan_s(), 8.0);
        assert_eq!(fleet.free_at(0), 8.0);
        assert_eq!(fleet.dispatches(0), 2);
    }

    #[test]
    fn earliest_free_and_utilization() {
        let mut fleet = FleetClock::new(3);
        assert_eq!(fleet.earliest_free(), (0, 0.0));
        fleet.dispatch(0, 0.0, 4.0);
        fleet.dispatch(1, 0.0, 1.0);
        fleet.dispatch(2, 0.0, 2.0);
        assert_eq!(fleet.earliest_free(), (1, 1.0));
        // 7 busy device-seconds over 4 s × 3 devices.
        assert!((fleet.utilization() - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(fleet.busy_s(0), 4.0);
    }

    #[test]
    fn identical_sequences_are_identical_timelines() {
        let run = || {
            let mut fleet = FleetClock::new(2);
            let mut ends = Vec::new();
            for i in 0..10 {
                let (dev, _) = fleet.earliest_free();
                let span = fleet.dispatch(dev, i as f64 * 0.3, 0.5 + (i % 3) as f64 * 0.2);
                ends.push((dev, span.start_s.to_bits(), span.end_s.to_bits()));
            }
            (ends, fleet.makespan_s().to_bits())
        };
        assert_eq!(run(), run());
    }
}
