//! Error type for the device simulator.

use std::fmt;

/// Everything that can go wrong talking to the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The modeled device memory is exhausted (or too fragmented).
    OutOfMemory {
        requested: u64,
        largest_free: u64,
        free_total: u64,
        capacity: u64,
    },
    /// Launch configuration exceeds the device limits.
    InvalidLaunch(String),
    /// Host buffer length does not match the device buffer in a copy.
    CopyLengthMismatch { device_len: usize, host_len: usize },
    /// A buffer from a different device was used.
    ForeignBuffer,
    /// Zero-sized allocation or other invalid request.
    InvalidRequest(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested, largest_free, free_total, capacity } => write!(
                f,
                "device out of memory: requested {requested} B, largest free block {largest_free} B \
                 ({free_total} B free of {capacity} B)"
            ),
            SimError::InvalidLaunch(what) => write!(f, "invalid launch: {what}"),
            SimError::CopyLengthMismatch { device_len, host_len } => write!(
                f,
                "copy length mismatch: device buffer holds {device_len} elements, host side {host_len}"
            ),
            SimError::ForeignBuffer => write!(f, "buffer belongs to a different device"),
            SimError::InvalidRequest(what) => write!(f, "invalid request: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::OutOfMemory {
            requested: 100,
            largest_free: 10,
            free_total: 30,
            capacity: 640,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("640"));
        assert!(SimError::ForeignBuffer.to_string().contains("different device"));
    }
}
