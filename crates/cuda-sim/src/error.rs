//! Error type for the device simulator.

use std::fmt;

/// Direction of a host↔device copy, used to label transfer faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host memory → device memory (`memcpy_htod`).
    HostToDevice,
    /// Device memory → host memory (`memcpy_dtoh`).
    DeviceToHost,
}

impl fmt::Display for TransferDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferDir::HostToDevice => write!(f, "h2d"),
            TransferDir::DeviceToHost => write!(f, "d2h"),
        }
    }
}

/// Everything that can go wrong talking to the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The modeled device memory is exhausted (or too fragmented).
    OutOfMemory {
        requested: u64,
        largest_free: u64,
        free_total: u64,
        capacity: u64,
    },
    /// Launch configuration exceeds the device limits.
    InvalidLaunch(String),
    /// Host buffer length does not match the device buffer in a copy.
    CopyLengthMismatch { device_len: usize, host_len: usize },
    /// A buffer from a different device was used.
    ForeignBuffer,
    /// Zero-sized allocation or other invalid request.
    InvalidRequest(String),
    /// A host↔device copy failed transiently (injected fault); the copy may
    /// be retried and the `index`th transfer in that direction is the one
    /// that failed.
    TransferFault { dir: TransferDir, index: u64 },
    /// A checksummed copy landed with a payload that fails CRC verification
    /// (silent corruption, *detected*). `index` is the device's transfer
    /// count at detection. Retryable: a retry re-sends the payload.
    CorruptTransfer { dir: TransferDir, index: u64 },
    /// The device stopped responding (injected hard failure); every further
    /// operation on it fails with this error.
    DeviceLost,
}

impl SimError {
    /// Is this error worth retrying on the same device? Transient transfer
    /// faults and detected-corrupt checksummed copies qualify —
    /// out-of-memory wants a smaller plan, and a lost device wants a
    /// different device (or the CPU).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::TransferFault { .. } | SimError::CorruptTransfer { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested, largest_free, free_total, capacity } => write!(
                f,
                "device out of memory: requested {requested} B, largest free block {largest_free} B \
                 ({free_total} B free of {capacity} B)"
            ),
            SimError::InvalidLaunch(what) => write!(f, "invalid launch: {what}"),
            SimError::CopyLengthMismatch { device_len, host_len } => write!(
                f,
                "copy length mismatch: device buffer holds {device_len} elements, host side {host_len}"
            ),
            SimError::ForeignBuffer => write!(f, "buffer belongs to a different device"),
            SimError::InvalidRequest(what) => write!(f, "invalid request: {what}"),
            SimError::TransferFault { dir, index } => {
                write!(f, "transient transfer fault on {dir} copy #{index}")
            }
            SimError::CorruptTransfer { dir, index } => {
                write!(f, "corrupted payload detected on {dir} copy (transfer #{index})")
            }
            SimError::DeviceLost => write!(f, "device lost: it no longer responds"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::OutOfMemory {
            requested: 100,
            largest_free: 10,
            free_total: 30,
            capacity: 640,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("640"));
        assert!(SimError::ForeignBuffer
            .to_string()
            .contains("different device"));
        let t = SimError::TransferFault {
            dir: TransferDir::HostToDevice,
            index: 3,
        };
        assert!(t.to_string().contains("h2d") && t.to_string().contains("#3"));
        assert!(SimError::DeviceLost.to_string().contains("lost"));
    }

    #[test]
    fn only_transfer_faults_are_transient() {
        assert!(SimError::TransferFault {
            dir: TransferDir::DeviceToHost,
            index: 1
        }
        .is_transient());
        assert!(!SimError::DeviceLost.is_transient());
        assert!(!SimError::OutOfMemory {
            requested: 1,
            largest_free: 0,
            free_total: 0,
            capacity: 0
        }
        .is_transient());
        assert!(!SimError::ForeignBuffer.is_transient());
    }
}
