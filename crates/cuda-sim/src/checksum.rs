//! CRC64 over device-word payloads, for checksummed transfers.
//!
//! The checked copy variants ([`crate::Device::memcpy_htod_checked_on`] and
//! friends) compare a CRC of the payload before the wire against a CRC of
//! what landed. CRC-64/XZ's generator polynomial detects every single-bit
//! error (the code is linear and no `x^j` is divisible by the degree-64
//! polynomial), which is exactly the corruption class the fault injector
//! models — so a scripted flip can never slip through a checked copy.
//!
//! The simulator hashes the 64-bit storage words directly rather than a
//! serialized byte stream: buffers store one element per word
//! ([`crate::DeviceScalar::to_word`]), so word identity *is* payload
//! identity, and the cost model charges the byte-serialized price
//! ([`crate::Device::CRC64_FLOPS_PER_BYTE`]) independently.

/// Reflected CRC-64/XZ generator polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// CRC64 over a stream of 64-bit payload words.
pub fn crc64<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut crc = !0u64;
    for w in words {
        crc ^= w;
        for _ in 0..64 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_zero_payloads_differ() {
        assert_ne!(crc64([]), crc64([0u64]));
        assert_ne!(crc64([0u64]), crc64([0u64, 0]));
    }

    #[test]
    fn deterministic() {
        let payload = [1u64, 2, 3, u64::MAX];
        assert_eq!(crc64(payload), crc64(payload));
    }

    #[test]
    fn every_single_bit_flip_changes_the_crc() {
        let payload: Vec<u64> = (0..4u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let clean = crc64(payload.iter().copied());
        for elem in 0..payload.len() {
            for bit in 0..64 {
                let mut flipped = payload.clone();
                flipped[elem] ^= 1u64 << bit;
                assert_ne!(
                    crc64(flipped),
                    clean,
                    "flip at word {elem} bit {bit} must be detected"
                );
            }
        }
    }

    #[test]
    fn order_matters() {
        assert_ne!(crc64([1u64, 2]), crc64([2u64, 1]));
    }
}
