//! Deterministic, seed-driven fault injection for the simulated device.
//!
//! Real GPU deployments fail in mundane ways: `cudaMalloc` returns
//! out-of-memory because another process grabbed the card, a DMA transfer
//! times out transiently, or the device falls off the bus entirely. The
//! reconstruction pipeline has to survive all three — re-plan with smaller
//! slabs, retry the copy, or degrade to the CPU engine. A [`FaultPlan`]
//! scripts those failures reproducibly so the recovery paths are testable:
//!
//! * **counted faults** — "fail the Nth device allocation / H2D / D2H"
//!   (1-based, injected exactly once);
//! * **probabilistic faults** — each transfer fails with probability `p`,
//!   drawn from a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//!   stream keyed by [`FaultPlan::seed`], so a given seed always produces
//!   the same fault sequence;
//! * **capacity lies** — the device reports only `report_mem` bytes of
//!   memory (the "another tenant on the card" scenario), which both the
//!   slab planner and the allocator observe;
//! * **hard failure** — after `fail_after_ops` successful operations (or
//!   `fail_after_launches` successful kernel launches, which in the
//!   reconstruction pipeline means "after slab N") the device is lost;
//!   every subsequent allocation, copy or launch returns
//!   [`SimError::DeviceLost`].
//!
//! Injected transfer faults are *transient*: the same copy retried
//! succeeds (unless the dice say otherwise again). Injected allocation
//! faults surface as ordinary [`SimError::OutOfMemory`] with the real
//! allocator statistics, so callers handle scripted and genuine OOM through
//! one code path.
//!
//! Beyond fail-stop faults the plan also scripts **silent corruption** —
//! the failure class no error code announces:
//!
//! * **transfer bit flips** — the Nth H2D/D2H copy's payload has one bit
//!   flipped in flight (the copy *succeeds*; only checksums can tell);
//! * **kernel bit flips** — during the Nth kernel launch one f64 deposit is
//!   perturbed by a single bit (a flipped mantissa in device memory);
//! * **stuck kernels** — the Nth launch takes `stall_s` extra virtual
//!   seconds with no error, the "hung SM" a watchdog must convert into a
//!   detected timeout.
//!
//! All silent faults are scripted by ordinal and leave a record in the
//! device's op trace and [`FaultStats`], so chaos runs are replayable.
//!
//! Fault ordinals count in **submission order** per direction (H2D, D2H,
//! launches), and the probabilistic dice are a pure hash of
//! `(seed, kind, ordinal)` rather than a shared sequential stream — so a
//! given spec fires at the same logical operation whatever stream
//! interleaving the ring pipeline chooses (depth 1 and depth 3 see the
//! same faults).

use crate::error::{SimError, TransferDir};

/// A scripted fault schedule. All knobs default to "never fail".
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fault dice (probabilistic knobs only).
    pub seed: u64,
    /// Fail the Nth allocation (1-based) with an out-of-memory error.
    pub fail_alloc_nth: Option<u64>,
    /// Fail the Nth host→device copy (1-based) with a transient fault.
    pub fail_h2d_nth: Option<u64>,
    /// Fail the Nth device→host copy (1-based) with a transient fault.
    pub fail_d2h_nth: Option<u64>,
    /// Each H2D copy fails with this probability (transient).
    pub h2d_fail_prob: f64,
    /// Each D2H copy fails with this probability (transient).
    pub d2h_fail_prob: f64,
    /// Report (and enforce) only this much device memory.
    pub report_mem: Option<u64>,
    /// After this many successful device operations the device is lost.
    pub fail_after_ops: Option<u64>,
    /// The device is lost at the kernel launch *after* this many successful
    /// ones (launches map 1:1 to row slabs in the reconstruction pipeline).
    /// Unlike `fail_after_ops`, transfers that drain already-launched slabs
    /// still complete, so the loss lands exactly at a slab boundary; once
    /// tripped, every operation refuses.
    pub fail_after_launches: Option<u64>,
    /// Silently flip one bit in the payload of the Nth H2D copy (1-based).
    /// The copy reports success.
    pub flip_h2d_nth: Option<u64>,
    /// Silently flip one bit in the payload of the Nth D2H copy (1-based).
    pub flip_d2h_nth: Option<u64>,
    /// Byte offset (into the payload, wrapped by its length) where transfer
    /// flips land; the top bit of that byte is XOR-ed.
    pub flip_byte: u64,
    /// During the Nth kernel launch (1-based), flip one mantissa bit of the
    /// `flip_op`th f64 deposit ([`crate::ThreadCtx::atomic_add_f64`]).
    pub flip_kernel_nth: Option<u64>,
    /// Which f64 deposit of the targeted launch is perturbed (0-based).
    pub flip_op: u64,
    /// The Nth kernel launch (1-based) stalls for `stall_s` extra seconds.
    pub stuck_kernel_nth: Option<u64>,
    /// Extra virtual seconds the stuck launch takes.
    pub stall_s: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            fail_alloc_nth: None,
            fail_h2d_nth: None,
            fail_d2h_nth: None,
            h2d_fail_prob: 0.0,
            d2h_fail_prob: 0.0,
            report_mem: None,
            fail_after_ops: None,
            fail_after_launches: None,
            flip_h2d_nth: None,
            flip_d2h_nth: None,
            flip_byte: 0,
            flip_kernel_nth: None,
            flip_op: 0,
            stuck_kernel_nth: None,
            stall_s: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder seed).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Fail the `n`th device allocation (1-based), once.
    pub fn fail_nth_alloc(mut self, n: u64) -> FaultPlan {
        self.fail_alloc_nth = Some(n);
        self
    }

    /// Fail the `n`th host→device copy (1-based), once.
    pub fn fail_nth_h2d(mut self, n: u64) -> FaultPlan {
        self.fail_h2d_nth = Some(n);
        self
    }

    /// Fail the `n`th device→host copy (1-based), once.
    pub fn fail_nth_d2h(mut self, n: u64) -> FaultPlan {
        self.fail_d2h_nth = Some(n);
        self
    }

    /// Fail each H2D copy with probability `p` (transient).
    pub fn h2d_fault_rate(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.h2d_fail_prob = p;
        self
    }

    /// Fail each D2H copy with probability `p` (transient).
    pub fn d2h_fault_rate(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.d2h_fail_prob = p;
        self
    }

    /// Report (and enforce) only `bytes` of device memory.
    pub fn report_mem_bytes(mut self, bytes: u64) -> FaultPlan {
        self.report_mem = Some(bytes);
        self
    }

    /// Lose the device after `n` successful operations.
    pub fn fail_after(mut self, n: u64) -> FaultPlan {
        self.fail_after_ops = Some(n);
        self
    }

    /// Lose the device after `n` successful kernel launches (i.e. right at
    /// the boundary of the `n`th row slab).
    pub fn fail_after_launches(mut self, n: u64) -> FaultPlan {
        self.fail_after_launches = Some(n);
        self
    }

    /// Silently flip one payload bit of the `n`th H2D copy (1-based).
    pub fn flip_nth_h2d(mut self, n: u64) -> FaultPlan {
        self.flip_h2d_nth = Some(n);
        self
    }

    /// Silently flip one payload bit of the `n`th D2H copy (1-based).
    pub fn flip_nth_d2h(mut self, n: u64) -> FaultPlan {
        self.flip_d2h_nth = Some(n);
        self
    }

    /// Payload byte offset transfer flips land on (wrapped by length).
    pub fn flip_byte_offset(mut self, byte: u64) -> FaultPlan {
        self.flip_byte = byte;
        self
    }

    /// Flip one mantissa bit of a deposit during the `n`th launch (1-based).
    pub fn flip_nth_kernel(mut self, n: u64) -> FaultPlan {
        self.flip_kernel_nth = Some(n);
        self
    }

    /// Which f64 deposit of the targeted launch is perturbed (0-based).
    pub fn flip_op_index(mut self, k: u64) -> FaultPlan {
        self.flip_op = k;
        self
    }

    /// Stall the `n`th kernel launch (1-based) for `stall_s` extra seconds.
    pub fn stall_nth_kernel(mut self, n: u64, stall_s: f64) -> FaultPlan {
        assert!(stall_s >= 0.0, "stall must be non-negative");
        self.stuck_kernel_nth = Some(n);
        self.stall_s = stall_s;
        self
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self != &FaultPlan {
            seed: self.seed,
            ..FaultPlan::default()
        }
    }
}

/// Counters of what a [`FaultPlan`] actually injected on one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Allocation failures injected.
    pub allocs_failed: u64,
    /// H2D copy faults injected.
    pub h2d_failed: u64,
    /// D2H copy faults injected.
    pub d2h_failed: u64,
    /// Operations refused because the device was lost.
    pub refused_after_loss: u64,
    /// H2D payloads silently corrupted.
    pub h2d_flipped: u64,
    /// D2H payloads silently corrupted.
    pub d2h_flipped: u64,
    /// Kernel deposits silently corrupted (only flips that actually landed
    /// — an armed launch with fewer deposits than `flip_op` fires nothing).
    pub kernel_flipped: u64,
    /// Kernel launches stalled by the stuck-kernel fault.
    pub kernel_stalled: u64,
}

impl FaultStats {
    /// Total faults injected (excluding post-loss refusals).
    pub fn total_injected(&self) -> u64 {
        self.allocs_failed + self.h2d_failed + self.d2h_failed
    }

    /// Total *silent* corruptions injected (flips and stalls): faults that
    /// returned no error and are only observable through integrity checks.
    pub fn total_silent(&self) -> u64 {
        self.h2d_flipped + self.d2h_flipped + self.kernel_flipped + self.kernel_stalled
    }

    /// Fold another device's counters into this one (fleet aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.allocs_failed += other.allocs_failed;
        self.h2d_failed += other.h2d_failed;
        self.d2h_failed += other.d2h_failed;
        self.refused_after_loss += other.refused_after_loss;
        self.h2d_flipped += other.h2d_flipped;
        self.d2h_flipped += other.d2h_flipped;
        self.kernel_flipped += other.kernel_flipped;
        self.kernel_stalled += other.kernel_stalled;
    }

    /// Merge any granularity of the fleet hierarchy — the devices of one
    /// node, or the per-node totals of a cluster — into one aggregate.
    /// `None` when no member carried a fault plan, so reports can
    /// distinguish "no faults configured" from "configured, fired zero".
    pub fn merge_all(stats: impl IntoIterator<Item = FaultStats>) -> Option<FaultStats> {
        let mut acc: Option<FaultStats> = None;
        for s in stats {
            acc.get_or_insert_with(FaultStats::default).merge(&s);
        }
        acc
    }
}

/// What the plan wants done to the payload of one (successful) transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TransferOutcome {
    /// Deliver the payload untouched.
    Clean,
    /// Deliver the payload with the top bit of `byte` (wrapped by the
    /// payload length) flipped — and report success.
    Corrupt { byte: u64 },
}

/// Silent effects the plan attaches to one (successful) kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LaunchEffects {
    /// Flip one mantissa bit of the `flip_op`th f64 deposit.
    pub(crate) flip_op: Option<u64>,
    /// Extra virtual seconds the launch takes (stuck kernel).
    pub(crate) stall_s: f64,
}

impl LaunchEffects {
    pub(crate) const CLEAN: LaunchEffects = LaunchEffects {
        flip_op: None,
        stall_s: 0.0,
    };
}

/// Live fault state: the plan plus deterministic submission-order counters.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    allocs: u64,
    h2d: u64,
    d2h: u64,
    ops_completed: u64,
    launches: u64,
    lost: bool,
    pub(crate) stats: FaultStats,
}

/// One SplitMix64 step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` keyed purely by `(seed, kind, ordinal)` — no
/// shared mutable stream, so the draw for "the 7th H2D copy" is the same
/// however allocs, launches and D2H copies interleave around it. This is
/// what makes probabilistic fault specs stable across pipeline depths.
fn keyed_dice(seed: u64, kind: u64, ordinal: u64) -> f64 {
    let mut s = seed
        ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ordinal.wrapping_mul(0xD1B5_4A32_D192_ED03);
    (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Dice-stream tags (the `kind` key of [`keyed_dice`]).
const DICE_H2D_FAIL: u64 = 1;
const DICE_D2H_FAIL: u64 = 2;

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            allocs: 0,
            h2d: 0,
            d2h: 0,
            ops_completed: 0,
            launches: 0,
            lost: false,
            stats: FaultStats::default(),
        }
    }

    /// Gate shared by every device operation: fails permanently once the
    /// scripted op budget is exhausted.
    fn check_alive(&mut self) -> Result<(), SimError> {
        if self.lost {
            self.stats.refused_after_loss += 1;
            return Err(SimError::DeviceLost);
        }
        if let Some(limit) = self.plan.fail_after_ops {
            if self.ops_completed >= limit {
                self.lost = true;
                self.stats.refused_after_loss += 1;
                return Err(SimError::DeviceLost);
            }
        }
        Ok(())
    }

    /// Has the device been lost (permanently) by this plan?
    pub(crate) fn is_lost(&self) -> bool {
        self.lost
    }

    /// Called by [`crate::Device`] before each allocation. `Ok(())` means
    /// proceed with the real allocator.
    pub(crate) fn on_alloc(&mut self) -> Result<(), SimError> {
        self.check_alive()?;
        self.allocs += 1;
        if self.plan.fail_alloc_nth == Some(self.allocs) {
            self.stats.allocs_failed += 1;
            // Reported as plain OOM by the caller (which has the allocator
            // statistics at hand); signal with a marker error here.
            return Err(SimError::InvalidRequest("injected alloc fault".into()));
        }
        self.ops_completed += 1;
        Ok(())
    }

    /// Called before each copy; `dir` picks the counter and dice. A clean
    /// outcome may still ask the caller to corrupt the payload silently.
    pub(crate) fn on_transfer(&mut self, dir: TransferDir) -> Result<TransferOutcome, SimError> {
        self.check_alive()?;
        let (count, nth, prob, flip_nth, dice_kind) = match dir {
            TransferDir::HostToDevice => {
                self.h2d += 1;
                (
                    self.h2d,
                    self.plan.fail_h2d_nth,
                    self.plan.h2d_fail_prob,
                    self.plan.flip_h2d_nth,
                    DICE_H2D_FAIL,
                )
            }
            TransferDir::DeviceToHost => {
                self.d2h += 1;
                (
                    self.d2h,
                    self.plan.fail_d2h_nth,
                    self.plan.d2h_fail_prob,
                    self.plan.flip_d2h_nth,
                    DICE_D2H_FAIL,
                )
            }
        };
        let scripted = nth == Some(count);
        let rolled = prob > 0.0 && keyed_dice(self.plan.seed, dice_kind, count) < prob;
        if scripted || rolled {
            match dir {
                TransferDir::HostToDevice => self.stats.h2d_failed += 1,
                TransferDir::DeviceToHost => self.stats.d2h_failed += 1,
            }
            return Err(SimError::TransferFault { dir, index: count });
        }
        self.ops_completed += 1;
        if flip_nth == Some(count) {
            match dir {
                TransferDir::HostToDevice => self.stats.h2d_flipped += 1,
                TransferDir::DeviceToHost => self.stats.d2h_flipped += 1,
            }
            return Ok(TransferOutcome::Corrupt {
                byte: self.plan.flip_byte,
            });
        }
        Ok(TransferOutcome::Clean)
    }

    /// Called before each kernel launch. The `fail_after_launches` limit
    /// trips here (and only here): transfers draining already-launched
    /// slabs still complete, so the loss lands exactly at a slab boundary.
    /// Once tripped, the loss is permanent for every operation. A
    /// successful launch may carry silent effects (a deposit flip or an
    /// injected stall) the device applies while executing it.
    pub(crate) fn on_launch(&mut self) -> Result<LaunchEffects, SimError> {
        self.check_alive()?;
        if let Some(limit) = self.plan.fail_after_launches {
            if self.launches >= limit {
                self.lost = true;
                self.stats.refused_after_loss += 1;
                return Err(SimError::DeviceLost);
            }
        }
        self.ops_completed += 1;
        self.launches += 1;
        let mut effects = LaunchEffects::CLEAN;
        if self.plan.flip_kernel_nth == Some(self.launches) {
            effects.flip_op = Some(self.plan.flip_op);
        }
        if self.plan.stuck_kernel_nth == Some(self.launches) {
            effects.stall_s = self.plan.stall_s;
            self.stats.kernel_stalled += 1;
        }
        Ok(effects)
    }

    /// The armed kernel flip actually landed on a deposit (reported back by
    /// the executor — a launch with too few deposits fires nothing).
    pub(crate) fn record_kernel_flip(&mut self) {
        self.stats.kernel_flipped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut st = FaultState::new(plan);
        for _ in 0..100 {
            st.on_alloc().unwrap();
            st.on_transfer(TransferDir::HostToDevice).unwrap();
            st.on_transfer(TransferDir::DeviceToHost).unwrap();
            st.on_launch().unwrap();
        }
        assert_eq!(st.stats, FaultStats::default());
    }

    #[test]
    fn nth_alloc_fails_exactly_once() {
        let mut st = FaultState::new(FaultPlan::new(1).fail_nth_alloc(3));
        assert!(st.on_alloc().is_ok());
        assert!(st.on_alloc().is_ok());
        assert!(st.on_alloc().is_err(), "third allocation must fail");
        assert!(st.on_alloc().is_ok(), "fault is one-shot");
        assert_eq!(st.stats.allocs_failed, 1);
    }

    #[test]
    fn transfer_faults_are_deterministic_per_seed() {
        let sequence = |seed: u64| -> Vec<bool> {
            let mut st = FaultState::new(FaultPlan::new(seed).h2d_fault_rate(0.5));
            (0..64)
                .map(|_| st.on_transfer(TransferDir::HostToDevice).is_err())
                .collect()
        };
        assert_eq!(sequence(7), sequence(7), "same seed, same faults");
        assert_ne!(sequence(7), sequence(8), "different seed, different faults");
        assert!(
            sequence(7).iter().any(|&f| f),
            "p = 0.5 must fire sometimes"
        );
        assert!(sequence(7).iter().any(|&f| !f), "and pass sometimes");
    }

    #[test]
    fn hard_failure_is_permanent() {
        let mut st = FaultState::new(FaultPlan::new(0).fail_after(2));
        assert!(st.on_alloc().is_ok());
        assert!(st.on_launch().is_ok());
        assert!(matches!(st.on_alloc(), Err(SimError::DeviceLost)));
        assert!(matches!(
            st.on_transfer(TransferDir::DeviceToHost),
            Err(SimError::DeviceLost)
        ));
        assert!(matches!(st.on_launch(), Err(SimError::DeviceLost)));
        assert_eq!(st.stats.refused_after_loss, 3);
    }

    #[test]
    fn loss_after_n_launches_trips_at_the_next_launch_only() {
        let mut st = FaultState::new(FaultPlan::new(0).fail_after_launches(2));
        for _ in 0..10 {
            st.on_alloc().unwrap();
            st.on_transfer(TransferDir::HostToDevice).unwrap();
        }
        assert!(st.on_launch().is_ok());
        assert!(st.on_launch().is_ok());
        assert!(!st.is_lost());
        // Transfers between the last good launch and the fatal one still
        // pass — that is what pins the loss to a slab boundary.
        assert!(st.on_transfer(TransferDir::DeviceToHost).is_ok());
        assert!(matches!(st.on_launch(), Err(SimError::DeviceLost)));
        assert!(st.is_lost(), "loss is permanent");
        assert!(matches!(st.on_alloc(), Err(SimError::DeviceLost)));
        assert!(matches!(
            st.on_transfer(TransferDir::DeviceToHost),
            Err(SimError::DeviceLost)
        ));
    }

    #[test]
    fn probabilistic_faults_ignore_interleaving() {
        // The dice for "the Nth h2d copy" must not depend on how many
        // allocs, launches or d2h copies happened in between — that is
        // what keeps fault specs stable across ring pipeline depths.
        let outcomes = |noise: bool| -> Vec<bool> {
            let mut st = FaultState::new(FaultPlan::new(9).h2d_fault_rate(0.4));
            (0..32)
                .map(|i| {
                    if noise {
                        // Interleave unrelated operations.
                        st.on_alloc().unwrap();
                        let _ = st.on_transfer(TransferDir::DeviceToHost);
                        if i % 3 == 0 {
                            st.on_launch().unwrap();
                        }
                    }
                    st.on_transfer(TransferDir::HostToDevice).is_err()
                })
                .collect()
        };
        assert_eq!(outcomes(false), outcomes(true));
        assert!(outcomes(false).iter().any(|&f| f));
        assert!(outcomes(false).iter().any(|&f| !f));
    }

    #[test]
    fn scripted_flip_fires_once_and_reports_success() {
        let mut st = FaultState::new(FaultPlan::new(0).flip_nth_h2d(2).flip_byte_offset(13));
        assert_eq!(
            st.on_transfer(TransferDir::HostToDevice).unwrap(),
            TransferOutcome::Clean
        );
        assert_eq!(
            st.on_transfer(TransferDir::HostToDevice).unwrap(),
            TransferOutcome::Corrupt { byte: 13 }
        );
        assert_eq!(
            st.on_transfer(TransferDir::HostToDevice).unwrap(),
            TransferOutcome::Clean,
            "flip is one-shot"
        );
        assert_eq!(st.stats.h2d_flipped, 1);
        assert_eq!(st.stats.total_silent(), 1);
        assert_eq!(
            st.stats.total_injected(),
            0,
            "silent faults are not failures"
        );
    }

    #[test]
    fn kernel_effects_script_by_launch_ordinal() {
        let mut st = FaultState::new(
            FaultPlan::new(0)
                .flip_nth_kernel(2)
                .flip_op_index(5)
                .stall_nth_kernel(3, 0.75),
        );
        assert_eq!(st.on_launch().unwrap(), LaunchEffects::CLEAN);
        let fx = st.on_launch().unwrap();
        assert_eq!(fx.flip_op, Some(5));
        assert_eq!(fx.stall_s, 0.0);
        let fx = st.on_launch().unwrap();
        assert_eq!(fx.flip_op, None);
        assert_eq!(fx.stall_s, 0.75);
        assert_eq!(st.on_launch().unwrap(), LaunchEffects::CLEAN);
        assert_eq!(st.stats.kernel_stalled, 1);
        assert_eq!(st.stats.kernel_flipped, 0, "flip counts only when it lands");
        st.record_kernel_flip();
        assert_eq!(st.stats.kernel_flipped, 1);
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::new(42)
            .fail_nth_alloc(1)
            .fail_nth_h2d(2)
            .fail_nth_d2h(3)
            .h2d_fault_rate(0.1)
            .d2h_fault_rate(0.2)
            .report_mem_bytes(1 << 20)
            .fail_after(99);
        assert!(plan.is_active());
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.report_mem, Some(1 << 20));
        assert_eq!(plan.fail_alloc_nth, Some(1));
        let mut st = FaultState::new(plan);
        assert!(st.on_alloc().is_err());
        assert!(st.on_transfer(TransferDir::HostToDevice).is_ok());
        match st.on_transfer(TransferDir::HostToDevice) {
            Err(SimError::TransferFault {
                dir: TransferDir::HostToDevice,
                index: 2,
            }) => {}
            other => panic!("expected scripted h2d fault, got {other:?}"),
        }
        assert!(st.stats.total_injected() >= 2);
    }
}
