//! First-fit device-memory allocator with free-list coalescing.
//!
//! The allocator models the *capacity* constraint of the device (the M2070's
//! 6 GB is what forces the paper's row-slab pipeline); payload bytes live in
//! per-buffer host allocations, so this structure only tracks address
//! ranges. Ranges are allocated first-fit from a sorted free list and
//! coalesced with both neighbours on free — fragmentation behaves the way a
//! real bump-free heap does, and the OOM error reports the largest free
//! block so callers can distinguish fragmentation from exhaustion.

use crate::error::SimError;

/// Byte alignment of every allocation (matches CUDA's 256-byte guarantee).
pub const ALIGN: u64 = 256;

/// A free range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FreeBlock {
    start: u64,
    len: u64,
}

/// The allocator state.
#[derive(Debug)]
pub struct Allocator {
    capacity: u64,
    /// Optional soft cap below `capacity`: the device *reports* (and this
    /// allocator enforces) only this many bytes, modelling a card partly
    /// occupied by another tenant. Installed by fault injection.
    limit: Option<u64>,
    /// Sorted, non-adjacent free blocks.
    free: Vec<FreeBlock>,
    /// Outstanding allocations: `(start, len)`, kept for validation.
    live: Vec<(u64, u64)>,
    /// High-water mark of bytes in use.
    peak_used: u64,
}

impl Allocator {
    /// A fresh allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Allocator {
        Allocator {
            capacity,
            limit: None,
            free: vec![FreeBlock {
                start: 0,
                len: capacity,
            }],
            live: Vec::new(),
            peak_used: 0,
        }
    }

    /// Total capacity in bytes, as reported to callers. A soft limit (see
    /// [`Allocator::set_limit`]) lowers the reported value.
    pub fn capacity(&self) -> u64 {
        match self.limit {
            Some(l) => l.min(self.capacity),
            None => self.capacity,
        }
    }

    /// Install (or clear) a soft capacity cap below the physical size.
    /// Capping below the bytes already in use makes every further
    /// allocation fail until enough is freed.
    pub fn set_limit(&mut self, limit: Option<u64>) {
        self.limit = limit;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.capacity - self.raw_free()
    }

    /// High-water mark of allocated bytes.
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Free bytes in the actual free list, ignoring any soft limit.
    fn raw_free(&self) -> u64 {
        self.free.iter().map(|b| b.len).sum()
    }

    /// Total free bytes (may be fragmented), as reported to callers —
    /// clamped by the soft limit so the capacity lie stays consistent.
    pub fn free_total(&self) -> u64 {
        self.raw_free()
            .min(self.capacity().saturating_sub(self.used()))
    }

    /// Largest single free block, clamped like [`Allocator::free_total`].
    pub fn largest_free(&self) -> u64 {
        self.free
            .iter()
            .map(|b| b.len)
            .max()
            .unwrap_or(0)
            .min(self.free_total())
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocate `bytes` (rounded up to [`ALIGN`]); returns the range start.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, SimError> {
        if bytes == 0 {
            return Err(SimError::InvalidRequest("zero-byte allocation".into()));
        }
        let len = bytes.div_ceil(ALIGN) * ALIGN;
        // Enforce the soft limit before touching the free list, so a cap
        // below current usage fails cleanly instead of finding a real block.
        if self.used() + len > self.capacity() {
            return Err(SimError::OutOfMemory {
                requested: len,
                largest_free: self.largest_free(),
                free_total: self.free_total(),
                capacity: self.capacity(),
            });
        }
        // First fit.
        for i in 0..self.free.len() {
            if self.free[i].len >= len {
                let start = self.free[i].start;
                if self.free[i].len == len {
                    self.free.remove(i);
                } else {
                    self.free[i].start += len;
                    self.free[i].len -= len;
                }
                self.live.push((start, len));
                self.peak_used = self.peak_used.max(self.used());
                return Ok(start);
            }
        }
        Err(SimError::OutOfMemory {
            requested: len,
            largest_free: self.largest_free(),
            free_total: self.free_total(),
            capacity: self.capacity(),
        })
    }

    /// Free a previously allocated range by its start address.
    ///
    /// Panics in debug builds on a double free or unknown address; in
    /// release builds an unknown free is ignored (matching the tolerant
    /// behaviour of `cudaFree` on a dead context).
    pub fn free(&mut self, start: u64) {
        let Some(pos) = self.live.iter().position(|&(s, _)| s == start) else {
            debug_assert!(false, "free of unknown address {start}");
            return;
        };
        let (_, len) = self.live.swap_remove(pos);
        // Insert into the sorted free list, coalescing with neighbours.
        let idx = self.free.partition_point(|b| b.start < start);
        let merges_prev = idx > 0 && self.free[idx - 1].start + self.free[idx - 1].len == start;
        let merges_next = idx < self.free.len() && start + len == self.free[idx].start;
        match (merges_prev, merges_next) {
            (true, true) => {
                self.free[idx - 1].len += len + self.free[idx].len;
                self.free.remove(idx);
            }
            (true, false) => self.free[idx - 1].len += len,
            (false, true) => {
                self.free[idx].start = start;
                self.free[idx].len += len;
            }
            (false, false) => self.free.insert(idx, FreeBlock { start, len }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut a = Allocator::new(4096);
        let x = a.alloc(100).unwrap();
        assert_eq!(x % ALIGN, 0);
        assert_eq!(a.used(), 256, "rounded to alignment");
        a.free(x);
        assert_eq!(a.used(), 0);
        assert_eq!(a.largest_free(), 4096, "coalesced back to one block");
    }

    #[test]
    fn zero_byte_allocation_rejected() {
        let mut a = Allocator::new(4096);
        assert!(matches!(a.alloc(0), Err(SimError::InvalidRequest(_))));
    }

    #[test]
    fn oom_reports_fragmentation() {
        let mut a = Allocator::new(1024);
        let b0 = a.alloc(256).unwrap();
        let b1 = a.alloc(256).unwrap();
        let _b2 = a.alloc(256).unwrap();
        let _b3 = a.alloc(256).unwrap();
        // Free two non-adjacent blocks: 512 free, but largest block 256.
        a.free(b0);
        a.free(b1);
        // b0 and b1 are adjacent, so they coalesce; grab a fresh pattern:
        let c0 = a.alloc(256).unwrap();
        let _c1 = a.alloc(256).unwrap();
        a.free(c0);
        // Now free space = 256 (hole) — asking 512 must OOM with stats.
        match a.alloc(512) {
            Err(SimError::OutOfMemory {
                requested,
                largest_free,
                free_total,
                capacity,
            }) => {
                assert_eq!(requested, 512);
                assert_eq!(largest_free, 256);
                assert_eq!(free_total, 256);
                assert_eq!(capacity, 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn coalescing_merges_both_sides() {
        let mut a = Allocator::new(3 * ALIGN);
        let x = a.alloc(ALIGN).unwrap();
        let y = a.alloc(ALIGN).unwrap();
        let z = a.alloc(ALIGN).unwrap();
        assert_eq!(a.free_total(), 0);
        a.free(x);
        a.free(z);
        assert_eq!(a.free_total(), 2 * ALIGN);
        assert_eq!(a.largest_free(), ALIGN, "two separate holes");
        a.free(y);
        assert_eq!(a.largest_free(), 3 * ALIGN, "middle free merges all three");
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = Allocator::new(4096);
        let x = a.alloc(1024).unwrap();
        let y = a.alloc(1024).unwrap();
        a.free(x);
        a.free(y);
        assert_eq!(a.peak_used(), 2048);
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn exhaustion_then_reuse() {
        let mut a = Allocator::new(1024);
        let blocks: Vec<u64> = (0..4).map(|_| a.alloc(256).unwrap()).collect();
        assert!(a.alloc(1).is_err());
        for b in blocks {
            a.free(b);
        }
        assert!(a.alloc(1024).is_ok());
    }

    #[test]
    fn soft_limit_caps_reported_and_usable_memory() {
        let mut a = Allocator::new(4096);
        a.set_limit(Some(1024));
        assert_eq!(a.capacity(), 1024);
        assert_eq!(a.free_total(), 1024);
        let x = a.alloc(512).unwrap();
        assert_eq!(a.free_total(), 512);
        assert_eq!(a.largest_free(), 512, "clamped below the real 3584 B hole");
        match a.alloc(1024) {
            Err(SimError::OutOfMemory {
                requested,
                free_total,
                capacity,
                ..
            }) => {
                assert_eq!(requested, 1024);
                assert_eq!(free_total, 512);
                assert_eq!(capacity, 1024, "the lie is consistent");
            }
            other => panic!("expected OOM under the soft limit, got {other:?}"),
        }
        a.free(x);
        a.set_limit(None);
        assert_eq!(a.capacity(), 4096);
        assert!(
            a.alloc(4096).is_ok(),
            "clearing the limit restores capacity"
        );
    }

    #[test]
    fn soft_limit_below_usage_blocks_all_allocation() {
        let mut a = Allocator::new(4096);
        let _x = a.alloc(2048).unwrap();
        a.set_limit(Some(1024));
        assert_eq!(a.free_total(), 0, "already over the cap");
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut a = Allocator::new(1 << 20);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for i in 1..50u64 {
            let len = i * 37;
            let start = a.alloc(len).unwrap();
            let aligned = len.div_ceil(ALIGN) * ALIGN;
            for &(s, l) in &ranges {
                assert!(start + aligned <= s || s + l <= start, "overlap");
            }
            ranges.push((start, aligned));
        }
    }
}
