//! The simulated device: memory, kernel execution, and virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::alloc::{Allocator, ALIGN};
use crate::checksum;
use crate::error::{SimError, TransferDir};
use crate::event::Event;
use crate::fault::{FaultPlan, FaultState, FaultStats, LaunchEffects, TransferOutcome};
use crate::host::Host;
use crate::kernel::{Dim3, KernelCorrupt, LaunchConfig, ThreadCtx, WorkerState};
use crate::memory::{Allocation, DeviceBuffer, DeviceScalar};
use crate::meter::{Cost, LaunchRecord, Meters};
use crate::props::{DeviceProps, ExecMode};
use crate::stream::{StreamId, Timelines};
use crate::trace::{OpRecord, TraceBuf, TraceMode};
use crate::Result;

static NEXT_DEVICE_ID: AtomicU64 = AtomicU64::new(1);

/// Virtual-time interval of one device operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSpan {
    /// When the operation started on its stream.
    pub start_s: f64,
    /// When it finished.
    pub end_s: f64,
}

/// Mutable bookkeeping behind one lock.
#[derive(Debug)]
struct DeviceState {
    timelines: Timelines,
    meters: Meters,
    records: Vec<LaunchRecord>,
    trace: TraceBuf,
    exec_mode: ExecMode,
}

/// A software CUDA-like device.
///
/// All methods take `&self`; internal state is lock-protected, and kernel
/// execution itself runs outside the locks so simulated threads can be
/// spread over host threads.
#[derive(Debug)]
pub struct Device {
    id: u64,
    props: DeviceProps,
    allocator: Arc<Mutex<Allocator>>,
    state: Mutex<DeviceState>,
    /// Scripted fault schedule, if any (see [`crate::fault`]).
    fault: Mutex<Option<FaultState>>,
    /// The host machine this device is plugged into. Transfers contend for
    /// its shared PCIe bus; host-side FLOPs charge its CPU resource.
    host: Arc<Host>,
    /// Engine-local actor tag on that host (dense attach order).
    slot: u64,
}

impl Device {
    /// Create a device with the given properties on a **private** host (it
    /// alone owns the PCIe bus — single-device schedules are unchanged).
    /// Execution defaults to [`ExecMode::Sequential`] (bit-deterministic);
    /// switch with [`set_exec_mode`](Self::set_exec_mode).
    pub fn new(props: DeviceProps) -> Device {
        Device::new_on_host(props, &Host::new_default())
    }

    /// Create a device attached to a shared [`Host`]: its transfers
    /// contend for that host's PCIe bus with every other attached device.
    /// This is how a multi-GPU node is modeled honestly — `N` devices on
    /// one host do *not* get `N×` the host bandwidth.
    pub fn new_on_host(props: DeviceProps, host: &Arc<Host>) -> Device {
        let slot = host.attach();
        Device {
            id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
            allocator: Arc::new(Mutex::new(Allocator::new(props.total_mem))),
            state: Mutex::new(DeviceState {
                timelines: Timelines::new(Arc::clone(host.engine()), slot),
                meters: Meters::default(),
                records: Vec::new(),
                trace: TraceBuf::new(TraceMode::default()),
                exec_mode: ExecMode::Sequential,
            }),
            fault: Mutex::new(None),
            host: Arc::clone(host),
            slot,
            props,
        }
    }

    /// The device's performance model.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// The host this device is attached to.
    pub fn host(&self) -> &Arc<Host> {
        &self.host
    }

    /// Process-unique device identifier. Buffers remember the id of the
    /// device that allocated them; callers keying per-device state (e.g.
    /// device-resident caches) should use this rather than pointer identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Choose how simulated threads run on the host.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        if let ExecMode::Threaded(n) = mode {
            assert!(n > 0, "threaded execution needs at least one worker");
        }
        self.state.lock().exec_mode = mode;
    }

    /// How simulated threads currently run. Verification layers use this to
    /// pick a comparison tolerance: sequential execution is bit-reproducible
    /// against a host re-computation, threaded execution only agrees within
    /// floating-point reassociation tolerance.
    pub fn exec_mode(&self) -> ExecMode {
        self.state.lock().exec_mode
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Install a scripted fault schedule. Subsequent allocations, copies
    /// and launches consult the plan; a `report_mem` knob additionally caps
    /// the memory this device reports and grants.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.allocator.lock().set_limit(plan.report_mem);
        *self.fault.lock() = Some(FaultState::new(plan));
    }

    /// Remove any fault schedule and restore the real memory capacity.
    pub fn clear_fault_plan(&self) {
        self.allocator.lock().set_limit(None);
        *self.fault.lock() = None;
    }

    /// What the installed plan has injected so far (`None` without a plan).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.lock().as_ref().map(|f| f.stats)
    }

    /// Has a fault plan permanently lost this device? A lost device refuses
    /// every operation with [`SimError::DeviceLost`] until the plan is
    /// cleared; fleet schedulers use this to skip dead devices without
    /// paying for another refused operation.
    pub fn is_lost(&self) -> bool {
        self.fault.lock().as_ref().is_some_and(|f| f.is_lost())
    }

    /// Consult the fault plan before an allocation of `bytes` (pre-align).
    /// An injected allocation fault is surfaced as an ordinary
    /// [`SimError::OutOfMemory`] carrying the real allocator statistics, so
    /// callers re-plan identically for scripted and genuine exhaustion.
    fn fault_check_alloc(&self, bytes: u64) -> Result<()> {
        let outcome = match self.fault.lock().as_mut() {
            Some(f) => f.on_alloc(),
            None => Ok(()),
        };
        outcome.map_err(|e| match e {
            SimError::InvalidRequest(_) => {
                let a = self.allocator.lock();
                SimError::OutOfMemory {
                    requested: bytes.div_ceil(ALIGN) * ALIGN,
                    largest_free: a.largest_free(),
                    free_total: a.free_total(),
                    capacity: a.capacity(),
                }
            }
            other => other,
        })
    }

    /// Consult the fault plan before a transfer. A transient fault still
    /// charges the bus time (the wire was busy while the copy failed) and
    /// leaves a `"fault"` op in the trace. A clean consult may still order
    /// a **silent** payload corruption ([`TransferOutcome::Corrupt`]): the
    /// copy paths apply it after the payload lands, leave a `"flip"` op in
    /// the trace, and report success — exactly like real hardware.
    fn fault_check_transfer(
        &self,
        dir: TransferDir,
        stream: StreamId,
        bytes: u64,
    ) -> Result<TransferOutcome> {
        let outcome = match self.fault.lock().as_mut() {
            Some(f) => f.on_transfer(dir),
            None => Ok(TransferOutcome::Clean),
        };
        match outcome {
            Err(e) => {
                if e.is_transient() {
                    let dur = self.props.transfer_time(bytes);
                    let mut st = self.state.lock();
                    let (start_s, end_s) = self.bus_transfer(&mut st, stream, dir, "fault", dur);
                    st.meters.comm_time_s += dur;
                    st.trace
                        .push_with("fault", stream.index(), start_s, end_s, || {
                            format!("{} fault {bytes} B", dir.to_string().to_uppercase())
                        });
                }
                Err(e)
            }
            Ok(o) => Ok(o),
        }
    }

    /// Put a transfer of modeled duration `dur` through the host's shared
    /// PCIe bus. The stream is ready at its cursor; the bus grants time
    /// from that instant onwards (exactly `[cursor, cursor + dur)` when
    /// uncontended), and the stream then waits for the transfer's end.
    /// Any extra time beyond `dur` is bus contention, metered as
    /// `bus_wait_s`.
    fn bus_transfer(
        &self,
        st: &mut DeviceState,
        stream: StreamId,
        dir: TransferDir,
        label: &'static str,
        dur: f64,
    ) -> (f64, f64) {
        let ready = st.timelines.cursor(stream);
        let (start_s, end_s) = self.host.bus_acquire(dir, self.slot, label, ready, dur);
        st.timelines.wait_until(stream, end_s);
        // Extra stall beyond the uncontended duration. A contended grant may
        // split across bus gaps (first burst on time, last byte late), so the
        // stall is measured at the drain end, not the start. The uncontended
        // fast path computes `end = ready + dur` with this same expression,
        // making the subtraction bitwise zero there.
        st.meters.bus_wait_s += (end_s - (ready + dur)).max(0.0);
        (start_s, end_s)
    }

    /// Consult the fault plan before a kernel launch. A permitted launch
    /// may carry silent effects (an armed deposit flip, an injected stall)
    /// that [`launch_shared_on`](Self::launch_shared_on) applies while
    /// executing it.
    fn fault_check_launch(&self) -> Result<LaunchEffects> {
        match self.fault.lock().as_mut() {
            Some(f) => f.on_launch(),
            None => Ok(LaunchEffects::CLEAN),
        }
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocate an uninitialised (zero-filled) buffer of `len` elements.
    pub fn alloc<T: DeviceScalar>(&self, len: usize) -> Result<DeviceBuffer<T>> {
        if len == 0 {
            return Err(SimError::InvalidRequest("zero-length buffer".into()));
        }
        let bytes = len as u64 * T::SIZE;
        self.fault_check_alloc(bytes)?;
        let addr = self.allocator.lock().alloc(bytes)?;
        let allocation = Allocation {
            addr,
            bytes,
            allocator: Arc::clone(&self.allocator),
        };
        Ok(DeviceBuffer::new(len, allocation, self.id))
    }

    /// Allocate a zero-filled buffer (alias of [`alloc`](Self::alloc); the
    /// simulator zero-fills all fresh memory).
    pub fn alloc_zeroed<T: DeviceScalar>(&self, len: usize) -> Result<DeviceBuffer<T>> {
        self.alloc(len)
    }

    /// Allocate and upload in one step (charges the H2D transfer).
    pub fn alloc_from_slice<T: DeviceScalar>(&self, data: &[T]) -> Result<DeviceBuffer<T>> {
        let buf = self.alloc::<T>(data.len())?;
        self.memcpy_htod(&buf, data)?;
        Ok(buf)
    }

    /// Explicitly free a buffer (equivalent to dropping the last handle).
    pub fn free<T: DeviceScalar>(&self, buf: DeviceBuffer<T>) {
        drop(buf);
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> u64 {
        self.allocator.lock().used()
    }

    /// High-water mark of device memory use.
    pub fn mem_peak(&self) -> u64 {
        self.allocator.lock().peak_used()
    }

    /// Modeled capacity.
    pub fn mem_capacity(&self) -> u64 {
        self.allocator.lock().capacity()
    }

    // ------------------------------------------------------------------
    // Transfers
    // ------------------------------------------------------------------

    fn check_buffer<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>) -> Result<()> {
        if buf.device_id != self.id {
            return Err(SimError::ForeignBuffer);
        }
        Ok(())
    }

    /// Copy host → device on the default stream.
    pub fn memcpy_htod<T: DeviceScalar>(
        &self,
        buf: &DeviceBuffer<T>,
        src: &[T],
    ) -> Result<TimeSpan> {
        self.memcpy_htod_on(StreamId::DEFAULT, buf, src)
    }

    /// Copy host → device on a chosen stream.
    pub fn memcpy_htod_on<T: DeviceScalar>(
        &self,
        stream: StreamId,
        buf: &DeviceBuffer<T>,
        src: &[T],
    ) -> Result<TimeSpan> {
        self.check_buffer(buf)?;
        if src.len() != buf.len() {
            return Err(SimError::CopyLengthMismatch {
                device_len: buf.len(),
                host_len: src.len(),
            });
        }
        let outcome =
            match self.fault_check_transfer(TransferDir::HostToDevice, stream, buf.modeled_bytes())
            {
                Ok(o) => o,
                Err(e) => {
                    if e.is_transient() {
                        // A failed DMA may have written any prefix of the buffer;
                        // poison it all so a retry must fully rewrite the data.
                        buf.poison();
                    }
                    return Err(e);
                }
            };
        for (i, &v) in src.iter().enumerate() {
            buf.store(i, v);
        }
        let flipped = apply_flip_device(outcome, buf);
        let bytes = buf.modeled_bytes();
        let dur = self.props.transfer_time(bytes);
        let mut st = self.state.lock();
        let (start_s, end_s) =
            self.bus_transfer(&mut st, stream, TransferDir::HostToDevice, "h2d", dur);
        st.meters.comm_time_s += dur;
        st.meters.h2d_bytes += bytes;
        st.meters.transfers += 1;
        st.trace
            .push_with("h2d", stream.index(), start_s, end_s, || {
                format!("H2D {bytes} B")
            });
        if let Some(elem) = flipped {
            st.trace
                .push_with("flip", stream.index(), end_s, end_s, || {
                    format!("H2D silent flip @ element {elem}")
                });
        }
        Ok(TimeSpan { start_s, end_s })
    }

    /// Stage several host → device copies into **one** coalesced bus
    /// transaction on `stream` (the pinned-staging / `cudaMemcpy2D`
    /// analogue). The transaction pays the PCIe latency once and the
    /// bandwidth term on the summed payload:
    /// `max(latency) + Σ bytes / bw` — see
    /// [`DeviceProps::transfer_time_batched`].
    ///
    /// Fault semantics match the single-copy path, applied to the
    /// transaction as a whole: a transient fault burns the full bus time,
    /// poisons **every** destination buffer (a partial DMA may have touched
    /// any of them), and counts as one failed H2D; the caller retries the
    /// whole batch. Validation (foreign buffers, length mismatches) happens
    /// before any data moves.
    pub fn memcpy_htod_batched<T: DeviceScalar>(
        &self,
        stream: StreamId,
        copies: &[(&DeviceBuffer<T>, &[T])],
    ) -> Result<TimeSpan> {
        if copies.is_empty() {
            return Err(SimError::InvalidRequest("empty batched copy".into()));
        }
        let mut bytes = 0u64;
        for (buf, src) in copies {
            self.check_buffer(buf)?;
            if src.len() != buf.len() {
                return Err(SimError::CopyLengthMismatch {
                    device_len: buf.len(),
                    host_len: src.len(),
                });
            }
            bytes += buf.modeled_bytes();
        }
        let outcome = match self.fault_check_transfer(TransferDir::HostToDevice, stream, bytes) {
            Ok(o) => o,
            Err(e) => {
                if e.is_transient() {
                    for (buf, _) in copies {
                        buf.poison();
                    }
                }
                return Err(e);
            }
        };
        for (buf, src) in copies {
            for (i, &v) in src.iter().enumerate() {
                buf.store(i, v);
            }
        }
        // A silent flip addresses the transaction's concatenated payload;
        // walk the copies to find the owning buffer.
        let mut flipped: Option<usize> = None;
        if let TransferOutcome::Corrupt { byte } = outcome {
            let mut off = byte % bytes;
            for (buf, _) in copies {
                if off < buf.modeled_bytes() {
                    flipped = apply_flip_device(TransferOutcome::Corrupt { byte: off }, buf);
                    break;
                }
                off -= buf.modeled_bytes();
            }
        }
        let dur = self.props.transfer_time_batched(bytes);
        let n = copies.len() as u64;
        let mut st = self.state.lock();
        let (start_s, end_s) =
            self.bus_transfer(&mut st, stream, TransferDir::HostToDevice, "h2d", dur);
        st.meters.comm_time_s += dur;
        st.meters.h2d_bytes += bytes;
        st.meters.transfers += 1;
        st.meters.coalesced_transactions += 1;
        st.meters.coalesced_copies += n;
        st.trace
            .push_with("h2d", stream.index(), start_s, end_s, || {
                format!("H2D coalesced {n}×, {bytes} B")
            });
        if let Some(elem) = flipped {
            st.trace
                .push_with("flip", stream.index(), end_s, end_s, || {
                    format!("H2D silent flip @ element {elem} (coalesced)")
                });
        }
        Ok(TimeSpan { start_s, end_s })
    }

    /// Copy device → host on the default stream.
    pub fn memcpy_dtoh<T: DeviceScalar>(
        &self,
        buf: &DeviceBuffer<T>,
        dst: &mut [T],
    ) -> Result<TimeSpan> {
        self.memcpy_dtoh_on(StreamId::DEFAULT, buf, dst)
    }

    /// Copy device → host on a chosen stream.
    pub fn memcpy_dtoh_on<T: DeviceScalar>(
        &self,
        stream: StreamId,
        buf: &DeviceBuffer<T>,
        dst: &mut [T],
    ) -> Result<TimeSpan> {
        self.check_buffer(buf)?;
        if dst.len() != buf.len() {
            return Err(SimError::CopyLengthMismatch {
                device_len: buf.len(),
                host_len: dst.len(),
            });
        }
        let outcome =
            match self.fault_check_transfer(TransferDir::DeviceToHost, stream, buf.modeled_bytes())
            {
                Ok(o) => o,
                Err(e) => {
                    if e.is_transient() {
                        // Partial-DMA analogue on the host side: scribble garbage
                        // into the destination so the caller cannot use it.
                        for v in dst.iter_mut() {
                            *v = T::from_word(0xDEAD_BEEF_DEAD_BEEF);
                        }
                    }
                    return Err(e);
                }
            };
        for (i, v) in dst.iter_mut().enumerate() {
            *v = buf.load(i);
        }
        let bytes = buf.modeled_bytes();
        // A D2H flip lands in the received host copy; device memory keeps
        // the true data (that asymmetry is what readback CRCs catch).
        let mut flipped: Option<usize> = None;
        if let TransferOutcome::Corrupt { byte } = outcome {
            let off = byte % bytes;
            let elem = (off / T::SIZE) as usize;
            let mask = 0x80u64 << (8 * (off % T::SIZE));
            dst[elem] = T::from_word(dst[elem].to_word() ^ mask);
            flipped = Some(elem);
        }
        let dur = self.props.transfer_time(bytes);
        let mut st = self.state.lock();
        let (start_s, end_s) =
            self.bus_transfer(&mut st, stream, TransferDir::DeviceToHost, "d2h", dur);
        st.meters.comm_time_s += dur;
        st.meters.d2h_bytes += bytes;
        st.meters.transfers += 1;
        st.trace
            .push_with("d2h", stream.index(), start_s, end_s, || {
                format!("D2H {bytes} B")
            });
        if let Some(elem) = flipped {
            st.trace
                .push_with("flip", stream.index(), end_s, end_s, || {
                    format!("D2H silent flip @ element {elem}")
                });
        }
        Ok(TimeSpan { start_s, end_s })
    }

    // ------------------------------------------------------------------
    // Checksummed transfers (end-to-end integrity)
    // ------------------------------------------------------------------

    /// Host FLOPs one CRC64 pass charges per payload byte (a table-driven
    /// software CRC: one XOR plus one table fold per byte, amortized).
    pub const CRC64_FLOPS_PER_BYTE: u64 = 4;

    /// [`memcpy_htod_on`](Self::memcpy_htod_on) with end-to-end payload
    /// verification: a CRC64 is computed over the host staging buffer
    /// before the copy and recomputed over the landed device words after
    /// it (modeling a device-side checksum pass; its cost is charged as
    /// host FLOPs on the overlapped host-CPU resource — no extra bus
    /// traffic). A mismatch reports [`SimError::CorruptTransfer`], which is
    /// retryable exactly like a transient transfer fault: a retry re-sends
    /// the payload.
    pub fn memcpy_htod_checked_on<T: DeviceScalar>(
        &self,
        stream: StreamId,
        buf: &DeviceBuffer<T>,
        src: &[T],
    ) -> Result<TimeSpan> {
        let expect = checksum::crc64(src.iter().map(|v| v.to_word()));
        let span = self.memcpy_htod_on(stream, buf, src)?;
        let landed = checksum::crc64((0..buf.len()).map(|i| buf.word(i).load(Ordering::Relaxed)));
        self.charge_host_flops(2 * buf.modeled_bytes() * Self::CRC64_FLOPS_PER_BYTE);
        if landed != expect {
            return Err(SimError::CorruptTransfer {
                dir: TransferDir::HostToDevice,
                index: self.meters().transfers,
            });
        }
        Ok(span)
    }

    /// [`memcpy_htod_batched`](Self::memcpy_htod_batched) with the same
    /// end-to-end verification as
    /// [`memcpy_htod_checked_on`](Self::memcpy_htod_checked_on), applied to
    /// the transaction's concatenated payload.
    pub fn memcpy_htod_batched_checked<T: DeviceScalar>(
        &self,
        stream: StreamId,
        copies: &[(&DeviceBuffer<T>, &[T])],
    ) -> Result<TimeSpan> {
        let expect = checksum::crc64(
            copies
                .iter()
                .flat_map(|(_, src)| src.iter().map(|v| v.to_word())),
        );
        let span = self.memcpy_htod_batched(stream, copies)?;
        let landed =
            checksum::crc64(copies.iter().flat_map(|(buf, _)| {
                (0..buf.len()).map(move |i| buf.word(i).load(Ordering::Relaxed))
            }));
        let bytes: u64 = copies.iter().map(|(buf, _)| buf.modeled_bytes()).sum();
        self.charge_host_flops(2 * bytes * Self::CRC64_FLOPS_PER_BYTE);
        if landed != expect {
            return Err(SimError::CorruptTransfer {
                dir: TransferDir::HostToDevice,
                index: self.meters().transfers,
            });
        }
        Ok(span)
    }

    /// [`memcpy_dtoh_on`](Self::memcpy_dtoh_on) with end-to-end payload
    /// verification: a CRC64 over the device words before the copy is
    /// compared against a CRC64 over the received host data. A mismatch
    /// reports [`SimError::CorruptTransfer`] (retryable); the destination
    /// holds the corrupted payload in that case and must not be used.
    pub fn memcpy_dtoh_checked_on<T: DeviceScalar>(
        &self,
        stream: StreamId,
        buf: &DeviceBuffer<T>,
        dst: &mut [T],
    ) -> Result<TimeSpan> {
        let expect = checksum::crc64((0..buf.len()).map(|i| buf.word(i).load(Ordering::Relaxed)));
        let span = self.memcpy_dtoh_on(stream, buf, dst)?;
        let landed = checksum::crc64(dst.iter().map(|v| v.to_word()));
        self.charge_host_flops(2 * buf.modeled_bytes() * Self::CRC64_FLOPS_PER_BYTE);
        if landed != expect {
            return Err(SimError::CorruptTransfer {
                dir: TransferDir::DeviceToHost,
                index: self.meters().transfers,
            });
        }
        Ok(span)
    }

    // ------------------------------------------------------------------
    // Kernel launches
    // ------------------------------------------------------------------

    /// Launch a kernel on the default stream. The closure runs once per
    /// simulated thread; see [`ThreadCtx`] for the device-side API.
    pub fn launch<F>(&self, name: &str, cfg: LaunchConfig, kernel: F) -> Result<LaunchRecord>
    where
        F: Fn(&mut ThreadCtx<'_>) + Sync,
    {
        self.launch_on(StreamId::DEFAULT, name, cfg, kernel)
    }

    /// Launch a kernel on a chosen stream.
    pub fn launch_on<F>(
        &self,
        stream: StreamId,
        name: &str,
        cfg: LaunchConfig,
        kernel: F,
    ) -> Result<LaunchRecord>
    where
        F: Fn(&mut ThreadCtx<'_>) + Sync,
    {
        self.launch_shared_on(stream, name, cfg, 0, |ctx, _| kernel(ctx), |_, _| {})
    }

    /// Launch a kernel that reserves `shared_f64` doubles of `__shared__`
    /// memory per block.
    ///
    /// Every block gets its own zero-initialised tile; the kernel closure
    /// runs once per thread with the block's tile, then `epilogue` runs
    /// **once per block** (with a context at thread (0,0,0)) after all the
    /// block's threads finish — the simulator's `__syncthreads()`-then-
    /// reduce idiom. Blocks never share a tile, so the pattern is
    /// deterministic even under [`ExecMode::Threaded`].
    ///
    /// The reservation is charged to the launch as occupancy pressure
    /// ([`Cost::shared_request`]); a request exceeding the device's
    /// `shared_mem_per_block` is an [`SimError::InvalidLaunch`], exactly
    /// like an oversized block.
    pub fn launch_shared_on<F, E>(
        &self,
        stream: StreamId,
        name: &str,
        cfg: LaunchConfig,
        shared_f64: usize,
        kernel: F,
        epilogue: E,
    ) -> Result<LaunchRecord>
    where
        F: Fn(&mut ThreadCtx<'_>, &mut [f64]) + Sync,
        E: Fn(&mut ThreadCtx<'_>, &mut [f64]) + Sync,
    {
        cfg.validate(&self.props)?;
        let shared_bytes = shared_f64 as u64 * 8;
        if shared_bytes > self.props.shared_mem_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "{shared_bytes} B of shared memory per block exceeds limit {}",
                self.props.shared_mem_per_block
            )));
        }
        let effects = self.fault_check_launch()?;
        let corrupt = effects.flip_op.map(KernelCorrupt::new);
        let exec_mode = self.state.lock().exec_mode;
        let (mut cost, traces) = match exec_mode {
            ExecMode::Sequential => {
                let mut state = WorkerState::new();
                state.corrupt = corrupt.clone();
                run_block_range(
                    cfg,
                    0..cfg.grid.count(),
                    shared_f64,
                    &kernel,
                    &epilogue,
                    &mut state,
                );
                let mut cost = state.cost;
                cost.atomic_max_chain = state.chain.max_chain();
                (cost, state.traces)
            }
            ExecMode::Threaded(workers) => {
                let next = AtomicU64::new(0);
                let total = cfg.grid.count();
                // Adaptive claim grain: ~8 claims per worker amortizes the
                // counter on huge grids without serializing small ones on a
                // single worker (a fixed batch of 8 did exactly that).
                let grain = (total / (workers as u64 * 8)).max(1);
                let states = Mutex::new(Vec::new());
                std::thread::scope(|scope| {
                    for _ in 0..workers.min(total as usize).max(1) {
                        scope.spawn(|| {
                            let mut state = WorkerState::new();
                            state.corrupt = corrupt.clone();
                            loop {
                                let start = next.fetch_add(grain, Ordering::Relaxed);
                                if start >= total {
                                    break;
                                }
                                let end = (start + grain).min(total);
                                run_block_range(
                                    cfg,
                                    start..end,
                                    shared_f64,
                                    &kernel,
                                    &epilogue,
                                    &mut state,
                                );
                            }
                            states.lock().push(state);
                        });
                    }
                });
                merge_states(states.into_inner())
            }
        };
        cost.shared_request = shared_bytes;
        // Only flips that actually landed on a deposit count — an armed
        // launch with fewer deposits than the target ordinal fires nothing.
        let flip_landed = corrupt
            .as_ref()
            .is_some_and(|c| c.fired.load(Ordering::Relaxed));
        if flip_landed {
            if let Some(f) = self.fault.lock().as_mut() {
                f.record_kernel_flip();
            }
        }
        // A stuck kernel occupies the stream for the extra stall with no
        // error; `cost` stays honest, so a watchdog can detect the hang by
        // comparing `duration_s` against the cost model's prediction.
        let duration = self.props.kernel_time(&cost) + effects.stall_s;
        let record = LaunchRecord {
            name: name.to_string(),
            threads: cfg.total_threads(),
            cost,
            duration_s: duration,
            stream: stream.index(),
            start_s: 0.0,
            end_s: 0.0,
            traces,
        };
        let mut st = self.state.lock();
        let (start_s, end_s) = st.timelines.schedule_labeled(stream, duration, "kernel");
        let record = LaunchRecord {
            start_s,
            end_s,
            ..record
        };
        st.meters.compute_time_s += duration;
        st.meters.launches += 1;
        st.meters.kernel_cost.merge(&cost);
        st.trace
            .push_with("kernel", stream.index(), start_s, end_s, || {
                record.name.clone()
            });
        if flip_landed {
            st.trace
                .push_with("flip", stream.index(), end_s, end_s, || {
                    format!("kernel silent flip in {}", record.name)
                });
        }
        if effects.stall_s > 0.0 {
            st.trace
                .push_with("stall", stream.index(), start_s, end_s, || {
                    format!("kernel stall +{:.3e} s in {}", effects.stall_s, record.name)
                });
        }
        st.records.push(record.clone());
        Ok(record)
    }

    // ------------------------------------------------------------------
    // Streams & time
    // ------------------------------------------------------------------

    /// Create an additional stream.
    pub fn create_stream(&self) -> StreamId {
        self.state.lock().timelines.create_stream()
    }

    /// Number of live streams (the default stream plus created ones).
    /// [`reset_meters`](Self::reset_meters) destroys created streams, so a
    /// device reused across runs stays at a constant count instead of
    /// growing by the per-run stream set every invocation.
    pub fn stream_count(&self) -> usize {
        self.state.lock().timelines.count()
    }

    /// Make `stream` wait for all work currently enqueued on `other`.
    pub fn stream_wait(&self, stream: StreamId, other: StreamId) {
        let mut st = self.state.lock();
        let t = st.timelines.schedule(other, 0.0).0;
        st.timelines.wait_until(stream, t);
    }

    /// Make `stream` wait until virtual time `t` — the event-wait primitive
    /// double-buffered pipelines use (`t` usually comes from a prior op's
    /// [`TimeSpan::end_s`] or [`LaunchRecord::end_s`]).
    pub fn wait_until(&self, stream: StreamId, t: f64) {
        self.state.lock().timelines.wait_until(stream, t);
    }

    /// Enqueue idle time on `stream` — the virtual-time analogue of a
    /// host-side sleep, used as retry backoff after a transient fault. The
    /// interval shows up in the trace but charges no meter.
    pub fn delay(&self, stream: StreamId, seconds: f64) -> TimeSpan {
        let mut st = self.state.lock();
        let (start_s, end_s) = st
            .timelines
            .schedule_labeled(stream, seconds.max(0.0), "idle");
        st.trace
            .push_with("idle", stream.index(), start_s, end_s, || {
                format!("backoff {seconds:.3e} s")
            });
        TimeSpan { start_s, end_s }
    }

    /// Device-wide barrier; returns the virtual time at the barrier.
    pub fn synchronize(&self) -> f64 {
        self.state.lock().timelines.synchronize()
    }

    /// Overlapped makespan so far.
    pub fn elapsed_s(&self) -> f64 {
        self.state.lock().timelines.elapsed()
    }

    /// Snapshot of the accumulated meters.
    pub fn meters(&self) -> Meters {
        self.state.lock().meters
    }

    /// Copy of the per-launch records.
    pub fn records(&self) -> Vec<LaunchRecord> {
        self.state.lock().records.clone()
    }

    /// Record an event capturing all work enqueued on `stream` so far.
    pub fn record_event(&self, stream: StreamId) -> Event {
        let mut st = self.state.lock();
        let (time_s, _) = st.timelines.schedule(stream, 0.0);
        Event { time_s }
    }

    /// Make `stream` wait for a recorded event (`cudaStreamWaitEvent`).
    pub fn stream_wait_event(&self, stream: StreamId, event: &Event) {
        self.state.lock().timelines.wait_until(stream, event.time_s);
    }

    /// Export the virtual timeline in Chrome Trace Event Format (view in
    /// `chrome://tracing` or Perfetto).
    pub fn export_chrome_trace(&self) -> String {
        let st = self.state.lock();
        crate::trace::chrome_trace(&self.props.name, &st.trace.ops())
    }

    /// Copy of the raw operation log behind the trace export (bounded by
    /// the current [`TraceMode`]).
    pub fn ops(&self) -> Vec<OpRecord> {
        self.state.lock().trace.ops()
    }

    /// Choose how much of the op log to keep (default: a bounded ring,
    /// see [`TraceMode`]). `TraceMode::Off` also skips name formatting.
    pub fn set_trace_mode(&self, mode: TraceMode) {
        self.state.lock().trace.set_mode(mode);
    }

    /// Op records not retained by the current trace mode.
    pub fn trace_dropped(&self) -> u64 {
        self.state.lock().trace.dropped()
    }

    /// Charge `flops` of host-side work (triangulation tables, shadow
    /// culling) to the host's CPU resource. The work is accounted on the
    /// host timeline — it packs the CPU from t = 0 and contends with every
    /// device attached to the same host — but it does **not** stall the
    /// device streams: stream virtual time is unchanged, preserving
    /// bit-identical device schedules. Read it back via
    /// [`host_flops_time_s`](Self::host_flops_time_s) or
    /// [`Host::cpu_busy_s`].
    pub fn charge_host_flops(&self, flops: u64) -> TimeSpan {
        let (start_s, end_s) = self.host.cpu_charge(self.slot, flops);
        TimeSpan { start_s, end_s }
    }

    /// Host-CPU busy seconds this device's host-side work occupies.
    pub fn host_flops_time_s(&self) -> f64 {
        self.host.cpu_busy_s_of(self.slot)
    }

    /// Bus-busy seconds this device committed on its host's PCIe bus.
    pub fn bus_busy_s(&self) -> f64 {
        self.host.bus_busy_s_of(self.slot)
    }

    /// Reset meters, records, the op trace and stream clocks, destroy
    /// created streams, and release this device's commitments on the
    /// host's shared resources (other devices on the host are untouched;
    /// memory stays allocated).
    pub fn reset_meters(&self) {
        let mut st = self.state.lock();
        st.meters = Meters::default();
        st.records.clear();
        st.trace.clear();
        st.timelines.reset();
        self.host.release(self.slot);
    }
}

/// Apply an ordered silent payload flip to a landed device buffer: XOR the
/// top bit of the addressed byte (wrapped to the payload length). Returns
/// the flipped element's index so the caller can trace it.
fn apply_flip_device<T: DeviceScalar>(
    outcome: TransferOutcome,
    buf: &DeviceBuffer<T>,
) -> Option<usize> {
    let TransferOutcome::Corrupt { byte } = outcome else {
        return None;
    };
    let off = byte % buf.modeled_bytes();
    let elem = (off / T::SIZE) as usize;
    let mask = 0x80u64 << (8 * (off % T::SIZE));
    buf.word(elem).fetch_xor(mask, Ordering::Relaxed);
    Some(elem)
}

/// Decompose a linear block index into grid coordinates (x fastest).
fn block_coords(grid: Dim3, linear: u64) -> Dim3 {
    let x = linear % grid.x;
    let y = (linear / grid.x) % grid.y;
    let z = linear / (grid.x * grid.y);
    Dim3 { x, y, z }
}

fn run_block_range<F, E>(
    cfg: LaunchConfig,
    blocks: std::ops::Range<u64>,
    shared_f64: usize,
    kernel: &F,
    epilogue: &E,
    state: &mut WorkerState,
) where
    F: Fn(&mut ThreadCtx<'_>, &mut [f64]) + Sync,
    E: Fn(&mut ThreadCtx<'_>, &mut [f64]) + Sync,
{
    // One tile per worker, re-zeroed per block (the hardware hands every
    // block pristine shared memory only logically; reuse is free here).
    let mut shared = vec![0.0f64; shared_f64];
    for b in blocks {
        let block_idx = block_coords(cfg.grid, b);
        shared.fill(0.0);
        for tz in 0..cfg.block.z {
            for ty in 0..cfg.block.y {
                for tx in 0..cfg.block.x {
                    let mut ctx = ThreadCtx {
                        block_idx,
                        thread_idx: Dim3 {
                            x: tx,
                            y: ty,
                            z: tz,
                        },
                        grid_dim: cfg.grid,
                        block_dim: cfg.block,
                        state,
                    };
                    kernel(&mut ctx, &mut shared);
                }
            }
        }
        let mut ctx = ThreadCtx {
            block_idx,
            thread_idx: Dim3 { x: 0, y: 0, z: 0 },
            grid_dim: cfg.grid,
            block_dim: cfg.block,
            state,
        };
        epilogue(&mut ctx, &mut shared);
    }
}

fn merge_states(states: Vec<WorkerState>) -> (Cost, [u64; crate::meter::TRACE_SLOTS]) {
    let mut cost = Cost::default();
    let mut chain = crate::meter::ChainEstimator::new();
    let mut traces = [0u64; crate::meter::TRACE_SLOTS];
    for s in states {
        cost.merge(&s.cost);
        chain.merge(&s.chain);
        for (t, v) in traces.iter_mut().zip(s.traces) {
            *t += v;
        }
    }
    cost.atomic_max_chain = chain.max_chain();
    (cost, traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_device() -> Device {
        Device::new(DeviceProps::tiny(1 << 16))
    }

    #[test]
    fn alloc_respects_capacity() {
        let d = tiny_device();
        let a = d.alloc::<f64>(4096).unwrap(); // 32 KiB
        let _b = d.alloc::<f64>(3000).unwrap(); // ~24 KiB
        assert!(matches!(
            d.alloc::<f64>(2048),
            Err(SimError::OutOfMemory { .. })
        ));
        d.free(a);
        assert!(d.alloc::<f64>(2048).is_ok(), "freeing makes room");
        assert!(d.mem_peak() >= d.mem_used());
    }

    #[test]
    fn zero_length_alloc_rejected() {
        let d = tiny_device();
        assert!(d.alloc::<u8>(0).is_err());
    }

    #[test]
    fn copies_move_real_data() {
        let d = tiny_device();
        let buf = d.alloc_from_slice(&[1.5f64, -2.0, 3.25]).unwrap();
        let mut back = [0.0f64; 3];
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        assert_eq!(back, [1.5, -2.0, 3.25]);
        let m = d.meters();
        assert_eq!(m.transfers, 2);
        assert_eq!(m.h2d_bytes, 24);
        assert_eq!(m.d2h_bytes, 24);
        assert!(m.comm_time_s > 0.0);
    }

    #[test]
    fn copy_length_mismatch_rejected() {
        let d = tiny_device();
        let buf = d.alloc::<u32>(4).unwrap();
        assert!(matches!(
            d.memcpy_htod(&buf, &[1u32, 2]),
            Err(SimError::CopyLengthMismatch {
                device_len: 4,
                host_len: 2
            })
        ));
        let mut small = [0u32; 3];
        assert!(d.memcpy_dtoh(&buf, &mut small).is_err());
    }

    #[test]
    fn batched_copy_coalesces_latency() {
        let d = tiny_device();
        let a = d.alloc::<f64>(8).unwrap();
        let b = d.alloc::<f64>(4).unwrap();
        let ha: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let hb: Vec<f64> = (0..4).map(|i| 100.0 + i as f64).collect();
        let span = d
            .memcpy_htod_batched(StreamId::DEFAULT, &[(&a, &ha), (&b, &hb)])
            .unwrap();
        let m = d.meters();
        assert_eq!(m.transfers, 1, "one bus transaction");
        assert_eq!(m.coalesced_transactions, 1);
        assert_eq!(m.coalesced_copies, 2);
        assert_eq!(m.h2d_bytes, 96);
        // One latency + summed bandwidth term, strictly cheaper than two
        // separate copies.
        let serial = d.props().transfer_time(64) + d.props().transfer_time(32);
        let expect = d.props().transfer_time_batched(96);
        assert!((span.end_s - span.start_s - expect).abs() < 1e-15);
        assert!(m.comm_time_s < serial);
        // The payloads really arrived.
        let mut back = vec![0.0f64; 8];
        d.memcpy_dtoh(&a, &mut back).unwrap();
        assert_eq!(back, ha);
        let mut back = vec![0.0f64; 4];
        d.memcpy_dtoh(&b, &mut back).unwrap();
        assert_eq!(back, hb);
    }

    #[test]
    fn batched_copy_validates_before_moving_data() {
        let d = tiny_device();
        let a = d.alloc_from_slice(&[5.0f64, 6.0]).unwrap();
        let b = d.alloc::<f64>(4).unwrap();
        assert!(d
            .memcpy_htod_batched(StreamId::DEFAULT, &[(&a, &[1.0, 2.0]), (&b, &[0.0; 3])])
            .is_err());
        // The length mismatch on `b` must have left `a` untouched.
        let mut back = [0.0f64; 2];
        d.memcpy_dtoh(&a, &mut back).unwrap();
        assert_eq!(back, [5.0, 6.0]);
        assert!(d
            .memcpy_htod_batched::<f64>(StreamId::DEFAULT, &[])
            .is_err());
    }

    #[test]
    fn batched_copy_transient_fault_poisons_all_destinations() {
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).fail_nth_h2d(1));
        let a = d.alloc::<f64>(2).unwrap();
        let b = d.alloc::<f64>(2).unwrap();
        let host = [1.0f64, 2.0];
        assert!(d
            .memcpy_htod_batched(StreamId::DEFAULT, &[(&a, &host), (&b, &host)])
            .is_err());
        assert!(
            d.meters().comm_time_s > 0.0,
            "failed transaction still burnt bus time"
        );
        // Retry rewrites everything.
        d.memcpy_htod_batched(StreamId::DEFAULT, &[(&a, &host), (&b, &host)])
            .unwrap();
        let mut back = [0.0f64; 2];
        d.memcpy_dtoh(&a, &mut back).unwrap();
        assert_eq!(back, host);
        d.memcpy_dtoh(&b, &mut back).unwrap();
        assert_eq!(back, host);
    }

    #[test]
    fn threaded_grain_adapts_to_small_grids() {
        // A grid smaller than the old fixed batch of 8 must still spread
        // over workers and, above all, visit every block exactly once.
        let d = tiny_device();
        d.set_exec_mode(ExecMode::Threaded(4));
        let counts = d.alloc_zeroed::<u64>(6).unwrap();
        let cfg = LaunchConfig::new(Dim3::new(6, 1, 1), Dim3::new(1, 1, 1));
        d.launch("tiny", cfg, |ctx| {
            ctx.atomic_add_u64(&counts, ctx.block_idx.x as usize, 1);
        })
        .unwrap();
        let mut host = vec![0u64; 6];
        d.memcpy_dtoh(&counts, &mut host).unwrap();
        assert!(host.iter().all(|&c| c == 1), "{host:?}");
    }

    #[test]
    fn foreign_buffers_rejected() {
        let d1 = tiny_device();
        let d2 = tiny_device();
        let buf = d1.alloc::<f64>(4).unwrap();
        assert!(matches!(
            d2.memcpy_htod(&buf, &[0.0; 4]),
            Err(SimError::ForeignBuffer)
        ));
    }

    #[test]
    fn launch_runs_every_thread_once() {
        let d = tiny_device();
        let counts = d.alloc_zeroed::<u64>(100).unwrap();
        let cfg = LaunchConfig::linear(100, 16); // 112 threads; guard excess
        d.launch("count", cfg, |ctx| {
            let i = ctx.global_id().x as usize;
            if i < 100 {
                ctx.atomic_add_u64(&counts, i, 1);
            }
        })
        .unwrap();
        let mut host = vec![0u64; 100];
        d.memcpy_dtoh(&counts, &mut host).unwrap();
        assert!(
            host.iter().all(|&c| c == 1),
            "each element visited exactly once"
        );
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let run = |mode: ExecMode| -> (Vec<f64>, Cost) {
            let d = tiny_device();
            d.set_exec_mode(mode);
            let xs: Vec<f64> = (0..256).map(|i| i as f64 * 0.5).collect();
            let input = d.alloc_from_slice(&xs).unwrap();
            let out = d.alloc_zeroed::<f64>(16).unwrap();
            let cfg = LaunchConfig::linear(256, 32);
            d.launch("hist", cfg, |ctx| {
                let i = ctx.global_id().x as usize;
                let v = ctx.read(&input, i);
                ctx.charge_flops(2);
                ctx.atomic_add_f64(&out, i % 16, v);
            })
            .unwrap();
            let mut host = vec![0.0f64; 16];
            d.memcpy_dtoh(&out, &mut host).unwrap();
            let m = d.meters();
            (host, m.kernel_cost)
        };
        let (seq, cost_seq) = run(ExecMode::Sequential);
        let (thr, cost_thr) = run(ExecMode::Threaded(4));
        for (a, b) in seq.iter().zip(&thr) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(cost_seq.flops, cost_thr.flops);
        assert_eq!(cost_seq.atomic_ops, cost_thr.atomic_ops);
        assert_eq!(cost_seq.mem_bytes, cost_thr.mem_bytes);
    }

    #[test]
    fn atomic_f64_is_exact_under_contention() {
        let d = tiny_device();
        d.set_exec_mode(ExecMode::Threaded(8));
        let out = d.alloc_zeroed::<f64>(1).unwrap();
        let cfg = LaunchConfig::linear(1024, 64);
        // Summing 1024 copies of 1.0 is exact in f64 regardless of order.
        d.launch("sum", cfg, |ctx| {
            let _ = ctx.global_id();
            ctx.atomic_add_f64(&out, 0, 1.0);
        })
        .unwrap();
        let mut host = [0.0f64];
        d.memcpy_dtoh(&out, &mut host).unwrap();
        assert_eq!(host[0], 1024.0);
        let m = d.meters();
        assert_eq!(m.kernel_cost.atomic_ops, 1024);
        assert!(m.kernel_cost.atomic_max_chain >= 1024, "single hot address");
    }

    #[test]
    fn shared_launch_gives_each_block_a_zeroed_tile() {
        let d = tiny_device();
        let out = d.alloc_zeroed::<f64>(4).unwrap();
        let cfg = LaunchConfig::new(Dim3::new(4, 1, 1), Dim3::linear(8));
        // Each thread privately accumulates into the block tile; the
        // epilogue commits one global add per block. A stale (un-zeroed)
        // tile would leak the previous block's sum into the next.
        d.launch_shared_on(
            StreamId::DEFAULT,
            "private-sum",
            cfg,
            2,
            |ctx, shared| {
                ctx.charge_shared_bytes(16);
                shared[0] += 1.0;
            },
            |ctx, shared| {
                ctx.atomic_add_f64(&out, ctx.block_idx.x as usize, shared[0]);
            },
        )
        .unwrap();
        let mut host = [0.0f64; 4];
        d.memcpy_dtoh(&out, &mut host).unwrap();
        assert_eq!(host, [8.0; 4], "8 threads per block, once per block");
        let m = d.meters();
        assert_eq!(m.kernel_cost.shared_bytes, 4 * 8 * 16);
        assert_eq!(m.kernel_cost.shared_request, 16);
        assert_eq!(m.kernel_cost.atomic_ops, 4, "one commit per block");
    }

    #[test]
    fn shared_launch_is_deterministic_under_threading() {
        // The contract the privatized accumulator relies on: each block's
        // threads see the block tile in a fixed (tz, ty, tx) order, and
        // when every global cell receives at most one commit, the result
        // is bitwise identical however blocks are spread over workers.
        let run = |mode: ExecMode| -> Vec<f64> {
            let d = tiny_device();
            d.set_exec_mode(mode);
            let xs: Vec<f64> = (0..256).map(|i| (i as f64 * 0.37).sin()).collect();
            let input = d.alloc_from_slice(&xs).unwrap();
            let out = d.alloc_zeroed::<f64>(8 * 8).unwrap();
            let cfg = LaunchConfig::linear(256, 32);
            d.launch_shared_on(
                StreamId::DEFAULT,
                "tile",
                cfg,
                8,
                |ctx, shared| {
                    let i = ctx.global_id().x as usize;
                    let v = ctx.read(&input, i);
                    ctx.charge_shared_bytes(16);
                    shared[i % 8] += v;
                },
                |ctx, shared| {
                    let row = ctx.block_idx.x as usize * 8;
                    for (slot, &v) in shared.iter().enumerate() {
                        ctx.atomic_add_f64(&out, row + slot, v);
                    }
                },
            )
            .unwrap();
            let mut host = vec![0.0f64; 8 * 8];
            d.memcpy_dtoh(&out, &mut host).unwrap();
            host
        };
        let seq = run(ExecMode::Sequential);
        let thr = run(ExecMode::Threaded(4));
        assert_eq!(
            seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            thr.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn oversized_shared_request_is_invalid_launch() {
        let d = tiny_device(); // 8 KiB shared per block
        let too_big = (d.props().shared_mem_per_block / 8 + 1) as usize;
        assert!(matches!(
            d.launch_shared_on(
                StreamId::DEFAULT,
                "hog",
                LaunchConfig::linear(8, 8),
                too_big,
                |_, _| {},
                |_, _| {},
            ),
            Err(SimError::InvalidLaunch(_))
        ));
        assert_eq!(d.meters().launches, 0);
    }

    #[test]
    fn big_shared_tiles_slow_the_launch_via_occupancy() {
        let time_with = |shared_f64: usize| -> f64 {
            let d = tiny_device();
            d.launch_shared_on(
                StreamId::DEFAULT,
                "flops",
                LaunchConfig::linear(64, 8),
                shared_f64,
                |ctx, _| ctx.charge_flops(1_000_000),
                |_, _| {},
            )
            .unwrap()
            .duration_s
        };
        let small = time_with(16); // plenty of blocks resident
        let huge = time_with(1024); // 8 KiB: one resident block
        assert!(
            huge > 2.0 * small,
            "low occupancy must inflate the modeled time: {huge} vs {small}"
        );
    }

    #[test]
    fn launch_validation_propagates() {
        let d = tiny_device();
        let cfg = LaunchConfig::linear(4096, 512); // tiny device: max 256/block
        assert!(matches!(
            d.launch("bad", cfg, |_| {}),
            Err(SimError::InvalidLaunch(_))
        ));
        assert_eq!(d.meters().launches, 0);
    }

    #[test]
    fn meters_accumulate_and_reset() {
        let d = tiny_device();
        let buf = d.alloc_from_slice(&[0.0f64; 8]).unwrap();
        d.launch("noop", LaunchConfig::linear(8, 8), |ctx| {
            ctx.charge_flops(10);
        })
        .unwrap();
        let m = d.meters();
        assert_eq!(m.launches, 1);
        assert_eq!(m.kernel_cost.flops, 80);
        assert!(m.compute_time_s > 0.0);
        assert!(m.serial_total_s() > m.compute_time_s);
        assert_eq!(d.records().len(), 1);
        assert_eq!(d.records()[0].name, "noop");
        d.reset_meters();
        assert_eq!(d.meters(), Meters::default());
        assert!(d.records().is_empty());
        assert_eq!(d.elapsed_s(), 0.0);
        drop(buf);
    }

    #[test]
    fn streams_overlap_copies_and_kernels() {
        let d = tiny_device();
        let big = d.alloc::<f64>(4096).unwrap();
        let host = vec![0.0f64; 4096];
        // Serial: copy then kernel on the same stream.
        d.memcpy_htod(&big, &host).unwrap();
        d.launch("work", LaunchConfig::linear(256, 64), |ctx| {
            ctx.charge_flops(1_000_000);
        })
        .unwrap();
        let serial_elapsed = d.synchronize();
        let serial_meters = d.meters();
        assert!((serial_elapsed - serial_meters.serial_total_s()).abs() < 1e-12);

        // Overlapped: same work split over two streams. The reset destroyed
        // every non-default stream, so the copy stream is created afresh.
        d.reset_meters();
        let copy_stream = d.create_stream();
        d.memcpy_htod_on(copy_stream, &big, &host).unwrap();
        d.launch("work", LaunchConfig::linear(256, 64), |ctx| {
            ctx.charge_flops(1_000_000);
        })
        .unwrap();
        let overlapped = d.synchronize();
        let m = d.meters();
        assert!(
            overlapped < m.serial_total_s() - 1e-12,
            "two streams must beat the serial sum: {overlapped} vs {}",
            m.serial_total_s()
        );
    }

    #[test]
    fn stream_wait_creates_dependency() {
        let d = tiny_device();
        let s = d.create_stream();
        let buf = d.alloc::<f64>(2048).unwrap();
        d.memcpy_htod(&buf, &vec![0.0; 2048]).unwrap();
        let copy_done = d.elapsed_s();
        d.stream_wait(s, StreamId::DEFAULT);
        d.launch_on(s, "dependent", LaunchConfig::linear(8, 8), |_| {})
            .unwrap();
        assert!(d.elapsed_s() >= copy_done);
    }

    #[test]
    fn injected_alloc_fault_reads_as_oom_with_real_stats() {
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).fail_nth_alloc(2));
        let _a = d.alloc::<f64>(16).unwrap();
        match d.alloc::<f64>(16) {
            Err(SimError::OutOfMemory {
                requested,
                capacity,
                ..
            }) => {
                assert_eq!(requested, 256, "aligned request size");
                assert_eq!(capacity, 1 << 16, "real capacity reported");
            }
            other => panic!("expected injected OOM, got {other:?}"),
        }
        assert!(d.alloc::<f64>(16).is_ok(), "fault is one-shot");
        assert_eq!(d.fault_stats().unwrap().allocs_failed, 1);
    }

    #[test]
    fn transient_h2d_fault_poisons_then_retry_succeeds() {
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).fail_nth_h2d(1));
        let buf = d.alloc::<f64>(4).unwrap();
        let data = [1.0f64, 2.0, 3.0, 4.0];
        let before = d.meters().comm_time_s;
        match d.memcpy_htod(&buf, &data) {
            Err(SimError::TransferFault {
                dir: TransferDir::HostToDevice,
                index: 1,
            }) => {}
            other => panic!("expected h2d fault, got {other:?}"),
        }
        assert!(
            d.meters().comm_time_s > before,
            "failed copy still burnt bus time"
        );
        assert_eq!(
            d.meters().h2d_bytes,
            0,
            "no payload counted for the failure"
        );
        assert!(d.ops().iter().any(|o| o.kind == "fault"));
        // Device memory is garbage now; the retry rewrites it fully.
        d.memcpy_htod(&buf, &data).unwrap();
        let mut back = [0.0f64; 4];
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn transient_d2h_fault_scribbles_host_destination() {
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).fail_nth_d2h(1));
        let buf = d.alloc_from_slice(&[7.0f64, 8.0]).unwrap();
        let mut out = [0.0f64; 2];
        assert!(d.memcpy_dtoh(&buf, &mut out).is_err());
        assert!(out.iter().all(|v| v.to_bits() == 0xDEAD_BEEF_DEAD_BEEF));
        d.memcpy_dtoh(&buf, &mut out).unwrap();
        assert_eq!(out, [7.0, 8.0]);
    }

    #[test]
    fn lost_device_refuses_everything() {
        let d = tiny_device();
        let buf = d.alloc_from_slice(&[0.0f64; 4]).unwrap();
        // alloc + h2d above consumed 2 ops; allow one more, then lose it.
        d.set_fault_plan(FaultPlan::new(0).fail_after(1));
        d.launch("ok", LaunchConfig::linear(4, 4), |_| {}).unwrap();
        assert!(matches!(
            d.launch("dead", LaunchConfig::linear(4, 4), |_| {}),
            Err(SimError::DeviceLost)
        ));
        assert!(matches!(d.alloc::<f64>(1), Err(SimError::DeviceLost)));
        let mut out = [0.0f64; 4];
        assert!(matches!(
            d.memcpy_dtoh(&buf, &mut out),
            Err(SimError::DeviceLost)
        ));
        assert_eq!(d.fault_stats().unwrap().refused_after_loss, 3);
    }

    #[test]
    fn report_mem_caps_device_capacity() {
        let d = tiny_device();
        assert_eq!(d.mem_capacity(), 1 << 16);
        d.set_fault_plan(FaultPlan::new(0).report_mem_bytes(1 << 12));
        assert_eq!(
            d.mem_capacity(),
            1 << 12,
            "capacity lie visible to planners"
        );
        assert!(d.alloc::<f64>(1024).is_err(), "8 KiB over a 4 KiB cap");
        assert!(d.alloc::<f64>(256).is_ok());
        d.clear_fault_plan();
        assert_eq!(d.mem_capacity(), 1 << 16);
        assert!(d.alloc::<f64>(1024).is_ok());
    }

    #[test]
    fn delay_advances_stream_clock_without_metering() {
        let d = tiny_device();
        let before = d.meters();
        let span = d.delay(StreamId::DEFAULT, 0.25);
        assert_eq!((span.start_s, span.end_s), (0.0, 0.25));
        assert_eq!(d.elapsed_s(), 0.25);
        assert_eq!(d.meters(), before, "idle time charges no meter");
        assert!(d.ops().iter().any(|o| o.kind == "idle"));
    }

    #[test]
    fn h2d_flip_lands_silently_and_is_traced() {
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).flip_nth_h2d(1).flip_byte_offset(17));
        let data = [1.0f64, 2.0, 3.0, 4.0];
        let buf = d.alloc::<f64>(4).unwrap();
        d.memcpy_htod(&buf, &data).unwrap();
        let mut back = [0.0f64; 4];
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        // Byte 17 → element 2, byte 1 → mask 0x8000.
        let diffs: Vec<usize> = (0..4).filter(|&i| back[i] != data[i]).collect();
        assert_eq!(diffs, vec![2], "exactly one element corrupted");
        assert_eq!(back[2].to_bits(), data[2].to_bits() ^ 0x8000);
        assert_eq!(d.fault_stats().unwrap().h2d_flipped, 1);
        assert!(d.ops().iter().any(|o| o.kind == "flip"));
        // One-shot: a fresh upload is clean again.
        d.memcpy_htod(&buf, &data).unwrap();
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn d2h_flip_corrupts_host_copy_only() {
        let d = tiny_device();
        let data = [5.0f64, 6.0];
        let buf = d.alloc_from_slice(&data).unwrap();
        d.set_fault_plan(FaultPlan::new(0).flip_nth_d2h(1));
        let mut back = [0.0f64; 2];
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        assert_eq!(back[0].to_bits(), data[0].to_bits() ^ 0x80);
        assert_eq!(back[1], data[1]);
        assert_eq!(d.fault_stats().unwrap().d2h_flipped, 1);
        // Device memory kept the truth; the next read is clean.
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn batched_flip_addresses_concatenated_payload() {
        let d = tiny_device();
        // 8 f64 + 4 f64 = 96 B; byte 70 → second buffer, element 0 byte 6.
        d.set_fault_plan(FaultPlan::new(0).flip_nth_h2d(1).flip_byte_offset(70));
        let a = d.alloc::<f64>(8).unwrap();
        let b = d.alloc::<f64>(4).unwrap();
        let ha = [1.0f64; 8];
        let hb = [2.0f64; 4];
        d.memcpy_htod_batched(StreamId::DEFAULT, &[(&a, &ha), (&b, &hb)])
            .unwrap();
        let mut back_a = [0.0f64; 8];
        let mut back_b = [0.0f64; 4];
        d.memcpy_dtoh(&a, &mut back_a).unwrap();
        d.memcpy_dtoh(&b, &mut back_b).unwrap();
        assert_eq!(back_a, ha, "first buffer untouched");
        assert_eq!(back_b[0].to_bits(), hb[0].to_bits() ^ (0x80u64 << 48));
        assert_eq!(&back_b[1..], &hb[1..]);
    }

    #[test]
    fn checked_h2d_detects_flip_and_retry_succeeds() {
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).flip_nth_h2d(1));
        let data = [1.0f64, 2.0, 3.0];
        let buf = d.alloc::<f64>(3).unwrap();
        match d.memcpy_htod_checked_on(StreamId::DEFAULT, &buf, &data) {
            Err(SimError::CorruptTransfer {
                dir: TransferDir::HostToDevice,
                ..
            }) => {}
            other => panic!("expected detected corruption, got {other:?}"),
        }
        assert!(
            d.host_flops_time_s() > 0.0,
            "CRC passes are charged as host FLOPs"
        );
        // The retry consumes a fresh ordinal, so the one-shot flip is gone.
        d.memcpy_htod_checked_on(StreamId::DEFAULT, &buf, &data)
            .unwrap();
        let mut back = [0.0f64; 3];
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn checked_batched_h2d_detects_flip() {
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).flip_nth_h2d(1).flip_byte_offset(40));
        let a = d.alloc::<f64>(4).unwrap();
        let b = d.alloc::<f64>(2).unwrap();
        let ha = [1.0f64; 4];
        let hb = [2.0f64; 2];
        assert!(matches!(
            d.memcpy_htod_batched_checked(StreamId::DEFAULT, &[(&a, &ha), (&b, &hb)]),
            Err(SimError::CorruptTransfer { .. })
        ));
        d.memcpy_htod_batched_checked(StreamId::DEFAULT, &[(&a, &ha), (&b, &hb)])
            .unwrap();
    }

    #[test]
    fn checked_d2h_detects_flip_and_passes_clean() {
        let d = tiny_device();
        let data = [7.0f64, 8.0, 9.0];
        let buf = d.alloc_from_slice(&data).unwrap();
        d.set_fault_plan(FaultPlan::new(0).flip_nth_d2h(1));
        let mut back = [0.0f64; 3];
        assert!(matches!(
            d.memcpy_dtoh_checked_on(StreamId::DEFAULT, &buf, &mut back),
            Err(SimError::CorruptTransfer {
                dir: TransferDir::DeviceToHost,
                ..
            })
        ));
        d.memcpy_dtoh_checked_on(StreamId::DEFAULT, &buf, &mut back)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn kernel_flip_perturbs_one_deposit_and_is_counted() {
        let run = |plan: Option<FaultPlan>| -> (Vec<f64>, u64) {
            let d = tiny_device();
            if let Some(p) = plan {
                d.set_fault_plan(p);
            }
            let out = d.alloc_zeroed::<f64>(4).unwrap();
            d.launch("sum", LaunchConfig::linear(16, 4), |ctx| {
                let i = ctx.global_id().x as usize;
                ctx.atomic_add_f64(&out, i % 4, 1.5);
            })
            .unwrap();
            let mut host = vec![0.0f64; 4];
            d.memcpy_dtoh(&out, &mut host).unwrap();
            let flips = d.fault_stats().map_or(0, |s| s.kernel_flipped);
            (host, flips)
        };
        let (clean, _) = run(None);
        let (bad, flips) = run(Some(FaultPlan::new(0).flip_nth_kernel(1).flip_op_index(5)));
        assert_eq!(flips, 1, "the armed flip landed");
        assert_ne!(
            clean.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            bad.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "a landed flip must change the output bits"
        );
        // An armed launch with fewer deposits than the target fires nothing.
        let (untouched, flips) = run(Some(
            FaultPlan::new(0).flip_nth_kernel(1).flip_op_index(999),
        ));
        assert_eq!(flips, 0);
        assert_eq!(untouched, clean);
    }

    #[test]
    fn stuck_kernel_stalls_stream_but_not_cost() {
        let clean = {
            let d = tiny_device();
            d.launch("work", LaunchConfig::linear(64, 8), |ctx| {
                ctx.charge_flops(1000);
            })
            .unwrap()
        };
        let d = tiny_device();
        d.set_fault_plan(FaultPlan::new(0).stall_nth_kernel(1, 0.5));
        let stalled = d
            .launch("work", LaunchConfig::linear(64, 8), |ctx| {
                ctx.charge_flops(1000);
            })
            .unwrap();
        assert_eq!(stalled.cost, clean.cost, "cost stays honest");
        assert!((stalled.duration_s - (clean.duration_s + 0.5)).abs() < 1e-12);
        // The watchdog predicate: observed duration far exceeds what the
        // cost model predicts for the recorded cost.
        let predicted = d.props().kernel_time(&stalled.cost);
        assert!(stalled.duration_s > 4.0 * predicted);
        assert_eq!(d.fault_stats().unwrap().kernel_stalled, 1);
        assert!(d.ops().iter().any(|o| o.kind == "stall"));
    }

    #[test]
    fn grid_3d_ids_cover_domain() {
        // The paper's Fig 6 mapping: (rows, cols, images) = (2, 9, 4).
        let d = tiny_device();
        let seen = d.alloc_zeroed::<u64>(72).unwrap();
        let cfg = LaunchConfig::cover(Dim3::new(2, 9, 4), Dim3::new(2, 3, 4));
        d.launch("map", cfg, |ctx| {
            let g = ctx.global_id();
            if g.x < 2 && g.y < 9 && g.z < 4 {
                let lin = (g.z * 9 + g.y) * 2 + g.x;
                ctx.atomic_add_u64(&seen, lin as usize, 1);
            }
        })
        .unwrap();
        let mut host = vec![0u64; 72];
        d.memcpy_dtoh(&seen, &mut host).unwrap();
        assert!(host.iter().all(|&c| c == 1));
    }
}
