//! `cuda-sim` — a software CUDA-like device with a calibrated virtual-time
//! cost model.
//!
//! The CLUSTER 2015 depth-reconstruction paper is a CUDA port evaluated on a
//! Tesla M2070. Its claims are about the *structure* of the computation —
//! host↔device transfer volume vs. kernel work, row-slab chunking under a
//! 6 GB memory cap, CAS-based `atomicAdd(double)`, layout-dependent pointer
//! shipping — none of which require silicon to reproduce. This crate supplies
//! that execution model in software:
//!
//! * **Separate device address space.** Data reaches the device only through
//!   [`Device::memcpy_htod`] / [`Device::memcpy_dtoh`], which really copy
//!   bytes and charge `bytes / pcie_bandwidth + latency` to the
//!   communication meter.
//! * **Capped device memory** with a first-fit/coalescing allocator —
//!   allocations beyond the modeled capacity fail with
//!   [`SimError::OutOfMemory`], exactly the constraint that forces the
//!   paper's row-slab pipeline.
//! * **Grid/block kernel launches** ([`Device::launch`]): every simulated
//!   thread runs functionally (real data, real results), sequentially or on
//!   a host thread pool; kernels meter their work through [`ThreadCtx`].
//! * **`atomicAdd(double)`** implemented the way the paper does it — a
//!   compare-and-swap loop over the 64-bit bit pattern — with retry counting
//!   so contention is observable.
//! * **Virtual time.** Each operation advances a stream timeline using a
//!   roofline-style model over the metered work
//!   ([`DeviceProps::kernel_time`]); [`HostProps`] provides the matching
//!   model for the CPU baseline. Ratios (GPU vs CPU, transfer vs compute)
//!   are therefore deterministic and machine-independent.
//! * **Streams with optional copy/compute overlap** for the double-buffering
//!   ablation the paper's related-work section discusses.
//!
//! The default [`DeviceProps::tesla_m2070`] and [`HostProps::xeon_e5630`]
//! presets are calibrated from the published specifications of the paper's
//! evaluation node (515 DP GFLOP/s vs. ~40, PCIe gen-2 ×16, 6 GB).
//!
//! # Example
//!
//! ```
//! use cuda_sim::{Device, DeviceProps, Dim3, LaunchConfig};
//!
//! let device = Device::new(DeviceProps::tesla_m2070());
//! let xs = device.alloc_from_slice::<f64>(&[1.0, 2.0, 3.0, 4.0]).unwrap();
//! let out = device.alloc_zeroed::<f64>(1).unwrap();
//! let cfg = LaunchConfig::new(Dim3::linear(2), Dim3::linear(2));
//! device
//!     .launch("sum", cfg, |ctx| {
//!         let i = ctx.global_id().x as usize;
//!         let v = ctx.read(&xs, i);
//!         ctx.atomic_add_f64(&out, 0, v);
//!     })
//!     .unwrap();
//! let mut result = [0.0f64];
//! device.memcpy_dtoh(&out, &mut result).unwrap();
//! assert_eq!(result[0], 10.0);
//! assert!(device.meters().compute_time_s > 0.0);
//! ```

pub mod alloc;
pub mod checksum;
pub mod cluster;
pub mod device;
pub mod error;
pub mod event;
pub mod fault;
pub mod fleet;
pub mod host;
pub mod kernel;
pub mod memory;
pub mod meter;
pub mod props;
pub mod sim;
pub mod stream;
pub mod trace;

pub use cluster::{Cluster, ClusterConfig, Delivery, Interconnect, InterconnectProps};
pub use device::{Device, TimeSpan};
pub use error::{SimError, TransferDir};
pub use event::Event;
pub use fault::{FaultPlan, FaultStats};
pub use fleet::{FleetClock, FleetSpan};
pub use host::{Duplex, Host, HostConfig};
pub use kernel::{Dim3, LaunchConfig, ThreadCtx};
pub use memory::{DeviceBuffer, DeviceScalar};
pub use meter::{ChainEstimator, Cost, LaunchRecord, Meters, TRACE_SLOTS};
pub use props::{DeviceProps, ExecMode, HostProps};
pub use sim::{Clock, Engine, EventRecord, RealClock, ResourceId, VirtualClock};
pub use stream::StreamId;
pub use trace::{OpRecord, TraceMode, DEFAULT_TRACE_CAP};

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;
