//! Property tests for the device simulator: allocator soundness, functional
//! equivalence across execution modes, and cost-model monotonicity.

use cuda_sim::{Device, DeviceProps, Dim3, ExecMode, LaunchConfig, StreamId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Allocations never alias and frees always restore capacity.
    #[test]
    fn allocator_soundness(sizes in proptest::collection::vec(1usize..2048, 1..20)) {
        let d = Device::new(DeviceProps::tiny(1 << 20));
        let mut bufs = Vec::new();
        for &s in &sizes {
            match d.alloc::<f64>(s) {
                Ok(b) => bufs.push(b),
                Err(_) => break,
            }
        }
        // Distinct modeled address ranges.
        for i in 0..bufs.len() {
            for j in i + 1..bufs.len() {
                let (a0, a1) = (bufs[i].device_addr(), bufs[i].device_addr() + bufs[i].modeled_bytes());
                let (b0, b1) = (bufs[j].device_addr(), bufs[j].device_addr() + bufs[j].modeled_bytes());
                prop_assert!(a1 <= b0 || b1 <= a0, "buffers overlap");
            }
        }
        let used = d.mem_used();
        prop_assert!(used >= bufs.iter().map(|b| b.modeled_bytes()).sum::<u64>());
        bufs.clear();
        prop_assert_eq!(d.mem_used(), 0, "all memory returned on drop");
    }

    /// Data survives a round trip through device memory bit-exactly.
    #[test]
    fn htod_dtoh_round_trip(data in proptest::collection::vec(any::<f64>(), 1..512)) {
        let d = Device::new(DeviceProps::tiny(1 << 16));
        let buf = d.alloc_from_slice(&data).unwrap();
        let mut back = vec![0.0f64; data.len()];
        d.memcpy_dtoh(&buf, &mut back).unwrap();
        for (a, b) in data.iter().zip(&back) {
            prop_assert!(a.to_bits() == b.to_bits(), "bit-exact round trip");
        }
    }

    /// A scatter-add kernel computes the same sums in sequential and
    /// threaded mode (within FP reorder tolerance), and the metered flops
    /// and atomics match exactly.
    #[test]
    fn exec_modes_equivalent(
        values in proptest::collection::vec(-100.0..100.0f64, 16..256),
        n_bins in 1usize..16,
        workers in 2usize..6,
    ) {
        let run = |mode: ExecMode| {
            let d = Device::new(DeviceProps::tiny(1 << 16));
            d.set_exec_mode(mode);
            let n = values.len();
            let input = d.alloc_from_slice(&values).unwrap();
            let out = d.alloc_zeroed::<f64>(n_bins).unwrap();
            let cfg = LaunchConfig::linear(n as u64, 32);
            d.launch("scatter", cfg, |ctx| {
                let i = ctx.global_id().x as usize;
                if i < n {
                    let v = ctx.read(&input, i);
                    ctx.charge_flops(1);
                    ctx.atomic_add_f64(&out, i % n_bins, v);
                }
            })
            .unwrap();
            let mut host = vec![0.0f64; n_bins];
            d.memcpy_dtoh(&out, &mut host).unwrap();
            (host, d.meters().kernel_cost)
        };
        let (a, ca) = run(ExecMode::Sequential);
        let (b, cb) = run(ExecMode::Threaded(workers));
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
        }
        prop_assert_eq!(ca.flops, cb.flops);
        prop_assert_eq!(ca.atomic_ops, cb.atomic_ops);
        prop_assert_eq!(ca.mem_bytes, cb.mem_bytes);
    }

    /// Kernel time is monotone in each cost component.
    #[test]
    fn kernel_time_monotone(flops in 0u64..1u64 << 40, bytes in 0u64..1u64 << 36, atomics in 0u64..1u64 << 24) {
        let p = DeviceProps::tesla_m2070();
        let base = cuda_sim::Cost { flops, mem_bytes: bytes, atomic_ops: atomics, ..Default::default() };
        let t0 = p.kernel_time(&base);
        let mut more = base;
        more.flops += 1 << 30;
        prop_assert!(p.kernel_time(&more) >= t0);
        let mut more = base;
        more.mem_bytes += 1 << 30;
        prop_assert!(p.kernel_time(&more) >= t0);
        let mut more = base;
        more.atomic_max_chain = 1 << 20;
        prop_assert!(p.kernel_time(&more) >= t0);
    }

    /// Transfer time is strictly increasing and superadditive-free
    /// (splitting a transfer only adds latency).
    #[test]
    fn transfer_split_costs_latency(bytes in 2u64..1 << 30, splits in 2u64..16) {
        let p = DeviceProps::tesla_m2070();
        let whole = p.transfer_time(bytes);
        let per = bytes / splits;
        let split_total: f64 = (0..splits).map(|_| p.transfer_time(per)).sum::<f64>()
            + p.transfer_time(bytes - per * splits + 1);
        prop_assert!(split_total > whole - 1e-12, "splitting cannot be cheaper");
    }

    /// Timeline invariants: per-stream ops never overlap and appear in
    /// issue order; the device elapsed time is the max op end; the Chrome
    /// trace is structurally sound.
    #[test]
    fn timeline_and_trace_invariants(
        ops in proptest::collection::vec((0usize..3, 1usize..256), 1..24),
    ) {
        let d = Device::new(DeviceProps::tiny(1 << 20));
        let s1 = d.create_stream();
        let s2 = d.create_stream();
        let streams = [StreamId::DEFAULT, s1, s2];
        let buf = d.alloc::<f64>(256).unwrap();
        let host = vec![0.0f64; 256];
        let mut scratch = vec![0.0f64; 256];
        for &(which, size) in &ops {
            let stream = streams[which];
            match size % 3 {
                0 => {
                    d.memcpy_htod_on(stream, &buf, &host).unwrap();
                }
                1 => {
                    d.memcpy_dtoh_on(stream, &buf, &mut scratch).unwrap();
                }
                _ => {
                    d.launch_on(stream, "w", LaunchConfig::linear(size as u64, 32), |ctx| {
                        ctx.charge_flops(100);
                    })
                    .unwrap();
                }
            }
        }
        let recorded = d.ops();
        prop_assert_eq!(recorded.len(), ops.len());
        // Per-stream: ordered, non-overlapping, positive duration.
        for stream in 0..3 {
            let mut last_end = 0.0f64;
            for op in recorded.iter().filter(|o| o.stream == stream) {
                prop_assert!(op.end_s > op.start_s);
                prop_assert!(op.start_s >= last_end - 1e-15, "ops overlap on stream {stream}");
                last_end = op.end_s;
            }
        }
        // Elapsed = max end.
        let max_end = recorded.iter().map(|o| o.end_s).fold(0.0f64, f64::max);
        prop_assert!((d.elapsed_s() - max_end).abs() < 1e-15);
        // Trace document is balanced and mentions every op kind used.
        let json = d.export_chrome_trace();
        prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
        for op in &recorded {
            let needle = format!("\"cat\":\"{}\"", op.kind);
            prop_assert!(json.contains(&needle), "trace missing kind {}", op.kind);
        }
    }

    /// Covering launches always reach every domain point exactly once, for
    /// arbitrary block shapes.
    #[test]
    fn cover_reaches_every_point(
        dx in 1u64..6, dy in 1u64..6, dz in 1u64..4,
        bx in 1u64..4, by in 1u64..4, bz in 1u64..3,
    ) {
        let d = Device::new(DeviceProps::tiny(1 << 16));
        let n = (dx * dy * dz) as usize;
        let seen = d.alloc_zeroed::<u64>(n).unwrap();
        let cfg = LaunchConfig::cover(Dim3::new(dx, dy, dz), Dim3::new(bx, by, bz));
        d.launch("cover", cfg, |ctx| {
            let g = ctx.global_id();
            if g.x < dx && g.y < dy && g.z < dz {
                let lin = ((g.z * dy + g.y) * dx + g.x) as usize;
                ctx.atomic_add_u64(&seen, lin, 1);
            }
        })
        .unwrap();
        let mut host = vec![0u64; n];
        d.memcpy_dtoh(&seen, &mut host).unwrap();
        prop_assert!(host.iter().all(|&c| c == 1));
    }
}

/// Deterministic pin of the committed `cover_reaches_every_point`
/// regression (see `proptests.proptest-regressions`): a z-only domain of
/// `(1, 1, 3)` covered by `1×1×1` blocks once exposed a launch-geometry bug
/// where the z extent was folded away and points were visited twice. Kept
/// as a plain test so the exact geometry runs on every `cargo test`,
/// independent of the proptest shim's sampling.
#[test]
fn cover_regression_z_only_domain_unit_blocks() {
    let (dx, dy, dz) = (1u64, 1u64, 3u64);
    let d = Device::new(DeviceProps::tiny(1 << 16));
    let n = (dx * dy * dz) as usize;
    let seen = d.alloc_zeroed::<u64>(n).unwrap();
    let cfg = LaunchConfig::cover(Dim3::new(dx, dy, dz), Dim3::new(1, 1, 1));
    d.launch("cover", cfg, |ctx| {
        let g = ctx.global_id();
        if g.x < dx && g.y < dy && g.z < dz {
            let lin = ((g.z * dy + g.y) * dx + g.x) as usize;
            ctx.atomic_add_u64(&seen, lin, 1);
        }
    })
    .unwrap();
    let mut host = vec![0u64; n];
    d.memcpy_dtoh(&seen, &mut host).unwrap();
    assert_eq!(host, vec![1, 1, 1], "every z point visited exactly once");
}
