//! Property tests for the discrete-event core: random schedules over
//! serial stream resources and a shared (half-duplex-style) bus must obey
//! the classic makespan bounds, and replaying the same plan must journal
//! bit-identically. Plus the device-level acceptance checks: concurrent
//! transfers on one bus take longer than either alone.

use std::sync::Arc;

use cuda_sim::{Device, DeviceProps, Engine, StreamId};
use proptest::prelude::*;

/// One step of a random plan: `stream` picks the serial resource, `kind`
/// selects compute (serial only) vs transfer (serial + shared bus), and
/// `dur` is the op's uncontended duration in milliseconds.
type Step = (usize, bool, u16);

/// Run a plan on a fresh engine; returns (engine, streams, bus).
fn run_plan(
    steps: &[Step],
    n_streams: usize,
    journal: bool,
) -> (Engine, Vec<cuda_sim::ResourceId>, cuda_sim::ResourceId) {
    let engine = Engine::new();
    if journal {
        engine.enable_journal();
    }
    let streams: Vec<_> = (0..n_streams)
        .map(|i| engine.serial(&format!("stream{i}")))
        .collect();
    let bus = engine.shared("bus");
    for &(which, is_xfer, ms) in steps {
        let stream = streams[which % n_streams];
        let dur = f64::from(ms) * 1e-3 + 1e-6; // never zero
        if is_xfer {
            let ready = engine.serial_cursor(stream);
            let (_, end) = engine.shared_acquire(bus, 0, "xfer", ready, dur);
            engine.serial_wait_until(stream, end);
        } else {
            engine.serial_advance(stream, 0, "kernel", dur);
        }
    }
    (engine, streams, bus)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The overlapped makespan never exceeds the serial sum of all op
    /// durations, and never undercuts any single resource's busy time —
    /// including the shared bus, whose occupancy is the floor the
    /// free-bandwidth bug used to tunnel below.
    #[test]
    fn makespan_bounds_hold(
        steps in proptest::collection::vec((0usize..4, any::<bool>(), 1u16..500), 1..64),
    ) {
        let (engine, streams, bus) = run_plan(&steps, 4, false);
        let makespan = streams
            .iter()
            .map(|&s| engine.serial_cursor(s))
            .fold(0.0f64, f64::max);
        let serial_sum: f64 = steps
            .iter()
            .map(|&(_, _, ms)| f64::from(ms) * 1e-3 + 1e-6)
            .sum();
        prop_assert!(
            makespan <= serial_sum * (1.0 + 1e-12) + 1e-12,
            "overlap cannot be slower than fully serial: {makespan} vs {serial_sum}"
        );
        // Lower bounds: the bus can only run one transfer at a time, and
        // each stream is an in-order queue of its own ops.
        let bus_busy = engine.busy_s(bus);
        prop_assert!(
            makespan >= bus_busy * (1.0 - 1e-12) - 1e-12,
            "makespan {makespan} undercuts bus busy time {bus_busy}"
        );
        for (i, &s) in streams.iter().enumerate() {
            let stream_work: f64 = steps
                .iter()
                .filter(|&&(which, _, _)| which % 4 == i)
                .map(|&(_, _, ms)| f64::from(ms) * 1e-3 + 1e-6)
                .sum();
            let cursor = engine.serial_cursor(s);
            prop_assert!(
                cursor >= stream_work * (1.0 - 1e-12) - 1e-12,
                "stream {i} cursor {cursor} undercuts its own work {stream_work}"
            );
        }
        // The engine clock is the frontier of everything scheduled.
        prop_assert!(engine.now() >= makespan - 1e-15);
    }

    /// The same plan on two fresh engines produces bit-identical event
    /// journals — the property slab-granular resume and the ring ablation
    /// rest on.
    #[test]
    fn same_plan_journals_bit_identically(
        steps in proptest::collection::vec((0usize..3, any::<bool>(), 1u16..200), 1..48),
    ) {
        let (a, _, _) = run_plan(&steps, 3, true);
        let (b, _, _) = run_plan(&steps, 3, true);
        let (ja, jb) = (a.journal(), b.journal());
        prop_assert_eq!(ja.len(), jb.len());
        for (x, y) in ja.iter().zip(&jb) {
            prop_assert_eq!(x, y);
            prop_assert!(x.start_s.to_bits() == y.start_s.to_bits());
            prop_assert!(x.end_s.to_bits() == y.end_s.to_bits());
        }
    }

    /// Transfers queued behind a busy bus start exactly when (or after)
    /// the bus frees up, never before, and committed grants never shrink.
    #[test]
    fn acquisitions_never_timetravel(
        durs in proptest::collection::vec(1u16..300, 2..24),
    ) {
        let engine = Engine::new();
        let bus = engine.shared("bus");
        let mut committed = 0.0f64;
        for (i, &ms) in durs.iter().enumerate() {
            let dur = f64::from(ms) * 1e-3;
            // All issued with ready = 0: FIFO occupancy must stack them.
            let (start, end) = engine.shared_acquire(bus, i as u64, "x", 0.0, dur);
            prop_assert!(start >= 0.0);
            prop_assert!(end - start >= dur - 1e-12, "grant shorter than requested");
            committed += dur;
            let busy = engine.busy_s(bus);
            prop_assert!((busy - committed).abs() <= 1e-9 * committed.max(1.0));
        }
    }
}

/// Acceptance: two transfers in flight at once on one device take longer
/// end-to-end than either would alone — the bus is metered, not free.
#[test]
fn concurrent_transfers_outlast_either_alone() {
    let props = DeviceProps::tesla_m2070();
    let bytes = 4 << 20; // 4 MiB each way
    let alone = props.transfer_time(bytes as u64 * 8);

    let d = Device::new(props);
    let host_data = vec![1.0f64; bytes];
    let mut back = vec![0.0f64; bytes];
    let buf_a = d.alloc_from_slice(&host_data).unwrap();
    let buf_b = d.alloc_from_slice(&host_data).unwrap();
    d.synchronize();
    d.reset_meters();
    let up = d.create_stream();
    let down = d.create_stream();
    // Both issued at t = 0 on independent streams: an upload and a
    // download race for the half-duplex link.
    d.memcpy_htod_on(up, &buf_a, &host_data).unwrap();
    d.memcpy_dtoh_on(down, &buf_b, &mut back).unwrap();
    let elapsed = d.synchronize();
    assert!(
        elapsed > alone * 1.5,
        "two concurrent transfers ({elapsed} s) must take longer than one alone ({alone} s)"
    );
    assert!(
        elapsed >= 2.0 * alone - 1e-12,
        "the half-duplex bus fully serializes them: {elapsed} vs {}",
        2.0 * alone
    );
    assert!(
        d.meters().bus_wait_s > 0.0,
        "the loser's stall must be on the meter"
    );
}

/// Acceptance, fleet form: the same transfer on each of two devices takes
/// longer on a shared host than on private hosts.
#[test]
fn two_devices_on_one_host_contend() {
    let bytes = 2 << 20;
    let host_data = vec![1.0f64; bytes];
    let run_pair = |shared: bool| -> f64 {
        let (d1, d2) = if shared {
            let h = cuda_sim::Host::new_default();
            (
                Device::new_on_host(DeviceProps::tesla_m2070(), &h),
                Device::new_on_host(DeviceProps::tesla_m2070(), &h),
            )
        } else {
            (
                Device::new(DeviceProps::tesla_m2070()),
                Device::new(DeviceProps::tesla_m2070()),
            )
        };
        let b1 = d1.alloc::<f64>(bytes).unwrap();
        let b2 = d2.alloc::<f64>(bytes).unwrap();
        d1.memcpy_htod(&b1, &host_data).unwrap();
        d2.memcpy_htod(&b2, &host_data).unwrap();
        d1.synchronize().max(d2.synchronize())
    };
    let private = run_pair(false);
    let shared = run_pair(true);
    assert!(
        shared > private * 1.5,
        "a shared bus must stretch the pair: {shared} vs {private}"
    );
}

/// Regression: a reused device must not leak stream timelines across runs
/// (`reset_meters` used to keep every created stream, so a shared
/// `Pipeline` grew its cursor vector by the ring depth on every run).
#[test]
fn reused_device_keeps_stream_count_flat() {
    let d = Device::new(DeviceProps::tiny(1 << 20));
    assert_eq!(d.stream_count(), 1, "fresh device has the default stream");
    let mut counts = Vec::new();
    for _ in 0..5 {
        d.reset_meters();
        let s1 = d.create_stream();
        let s2 = d.create_stream();
        let s3 = d.create_stream();
        for s in [StreamId::DEFAULT, s1, s2, s3] {
            d.delay(s, 1e-4);
        }
        d.synchronize();
        counts.push(d.stream_count());
    }
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "stream count must stay flat across runs, got {counts:?}"
    );
    d.reset_meters();
    assert_eq!(d.stream_count(), 1, "reset returns to the default stream");
}

/// Resource handles are generational: an engine that frees and recreates
/// resources hands out fresh handles and panics on stale ones.
#[test]
fn engine_shared_with_devices_is_the_host_engine() {
    let h = cuda_sim::Host::new_default();
    let d1 = Device::new_on_host(DeviceProps::tiny(1 << 20), &h);
    let d2 = Device::new_on_host(DeviceProps::tiny(1 << 20), &h);
    assert!(Arc::ptr_eq(d1.host().engine(), d2.host().engine()));
    assert!(Arc::ptr_eq(d1.host(), d2.host()));
}
