//! Monte-Carlo validation of the Poisson variance propagation: the
//! *predicted* error bars must match the *empirical* scatter over many
//! noisy realizations of the same scan.

use laue_core::uncertainty::reconstruct_with_variance;
use laue_core::{ReconstructionConfig, ScanGeometry, ScanView};
use laue_wire::forward::{render_stack, RenderOptions};
use laue_wire::SamplePlan;

#[test]
fn predicted_sigma_matches_empirical_scatter() {
    let geom = ScanGeometry::demo(6, 6, 16, -40.0, 5.0).unwrap();
    let mapper = geom.mapper().unwrap();
    let (r, c) = (3, 3);
    let pixel = geom.detector.pixel_to_xyz(r, c).unwrap();
    let d0 = mapper
        .depth(
            pixel,
            geom.wire.center(0).unwrap(),
            laue_core::WireEdge::Leading,
        )
        .unwrap();
    let d15 = mapper
        .depth(
            pixel,
            geom.wire.center(15).unwrap(),
            laue_core::WireEdge::Leading,
        )
        .unwrap();
    let mut plan = SamplePlan::new();
    plan.add_point(r, c, (d0 + d15) / 2.0, 900.0).unwrap();

    let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 150);

    // `noise = 1.0` gives var(count) = count — exactly the Poisson model the
    // propagation assumes.
    let n_trials = 48;
    let mut per_trial: Vec<Vec<f64>> = Vec::with_capacity(n_trials);
    let mut predicted_var = None;
    for seed in 0..n_trials as u64 {
        let images = render_stack(
            &geom,
            &plan,
            &RenderOptions {
                background: 200.0,
                noise: 1.0,
                seed: 1000 + seed,
                ..Default::default()
            },
        )
        .unwrap();
        let view = ScanView::new(&images, 16, 6, 6).unwrap();
        let out = reconstruct_with_variance(&view, &geom, &cfg).unwrap();
        per_trial.push(out.image.depth_profile(r, c));
        if predicted_var.is_none() {
            predicted_var = Some(
                (0..cfg.n_depth_bins)
                    .map(|b| out.variance.at(b, r, c))
                    .collect::<Vec<f64>>(),
            );
        }
    }
    let predicted_var = predicted_var.unwrap();

    // Compare empirical vs predicted standard deviation on the bins with
    // meaningful predicted uncertainty.
    let mut checked = 0;
    for b in 0..cfg.n_depth_bins {
        let pred = predicted_var[b].sqrt();
        if pred < 5.0 {
            continue; // skip bins that barely receive deposits
        }
        let vals: Vec<f64> = per_trial.iter().map(|t| t[b]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let emp =
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64).sqrt();
        let ratio = emp / pred;
        assert!(
            (0.5..2.0).contains(&ratio),
            "bin {b}: empirical σ {emp:.2} vs predicted {pred:.2} (ratio {ratio:.2})"
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "need several bins with real uncertainty, got {checked}"
    );
}
