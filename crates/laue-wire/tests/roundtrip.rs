//! The validation the paper could not do: reconstruct synthetic scans with
//! known ground truth and check that each scatterer's depth is recovered.

use laue_core::{cpu, ReconstructionConfig, ScanView, WireEdge as Edge};
use laue_wire::forward::{render_stack, RenderOptions};
use laue_wire::{SamplePlan, SyntheticScanBuilder};

/// Reconstruction window wide enough for the demo geometry's depth spread.
fn wide_config(bins: usize) -> ReconstructionConfig {
    ReconstructionConfig::new(-1500.0, 1500.0, bins)
}

/// Reconstruct a scan with the sequential CPU engine.
fn reconstruct(
    scan: &laue_wire::SyntheticScan,
    cfg: &ReconstructionConfig,
) -> laue_core::cpu::CpuReconstruction {
    let view = ScanView::new(
        &scan.images,
        scan.geometry.wire.n_steps,
        scan.geometry.detector.n_rows,
        scan.geometry.detector.n_cols,
    )
    .unwrap();
    cpu::reconstruct_seq(&view, &scan.geometry, cfg).unwrap()
}

#[test]
fn single_scatterer_depth_recovered() {
    let scan = SyntheticScanBuilder::new(8, 8, 24)
        .scatterers(1)
        .background(0.0)
        .seed(5)
        .build()
        .unwrap();
    let cfg = wide_config(600); // 5 µm bins
    let out = reconstruct(&scan, &cfg);
    let s = &scan.truth.scatterers[0];
    let peak = out
        .image
        .pixel_peak_depth(s.row, s.col, &cfg)
        .expect("scatterer must produce a depth peak");
    // Resolution limit: the leading edge advances ~2·step = 10 µm per
    // image, so the band is ~10 µm wide; allow band + bin slack.
    let tol = 2.0 * scan.geometry.wire.step.norm() + 2.0 * cfg.bin_width();
    assert!(
        (peak - s.depth).abs() <= tol,
        "recovered {peak} vs truth {} (tol {tol})",
        s.depth
    );
}

#[test]
fn many_scatterers_recovered_with_background() {
    let scan = SyntheticScanBuilder::new(10, 10, 32)
        .scatterers(12)
        .background(20.0)
        .seed(42)
        .build()
        .unwrap();
    let cfg = wide_config(750); // 4 µm bins
    let out = reconstruct(&scan, &cfg);
    let step_advance = 2.0 * scan.geometry.wire.step.norm();
    let tol = step_advance + 2.0 * cfg.bin_width();
    let mut recovered = 0;
    for s in &scan.truth.scatterers {
        if let Some(peak) = out.image.pixel_peak_depth(s.row, s.col, &cfg) {
            if (peak - s.depth).abs() <= tol {
                recovered += 1;
            }
        }
    }
    // Scatterers sharing a pixel can mask each other; demand a high rate,
    // not perfection.
    assert!(
        recovered * 10 >= scan.truth.len() * 9,
        "only {recovered}/{} scatterers recovered",
        scan.truth.len()
    );
}

#[test]
fn recovery_survives_moderate_noise() {
    let scan = SyntheticScanBuilder::new(8, 8, 24)
        .scatterers(4)
        .background(15.0)
        .noise(1.0)
        .intensity_range(300.0, 600.0)
        .seed(9)
        .build()
        .unwrap();
    let mut cfg = wide_config(600);
    // A small cutoff suppresses the noise-only differentials.
    cfg.intensity_cutoff = 20.0;
    let out = reconstruct(&scan, &cfg);
    let tol = 2.0 * scan.geometry.wire.step.norm() + 2.0 * cfg.bin_width();
    let mut recovered = 0;
    for s in &scan.truth.scatterers {
        if let Some(peak) = out.image.pixel_peak_depth(s.row, s.col, &cfg) {
            if (peak - s.depth).abs() <= tol {
                recovered += 1;
            }
        }
    }
    assert!(
        recovered >= 3,
        "noise broke depth recovery: {recovered}/4 within {tol} µm"
    );
}

#[test]
fn trailing_edge_reconstruction_also_recovers_depth() {
    // Reconstructing with the trailing edge uses the *re-exposure* events;
    // the same scan must yield the same depths.
    let scan = SyntheticScanBuilder::new(8, 8, 48)
        .scatterers(1)
        .background(0.0)
        .wire_travel(-120.0, 5.0)
        .seed(17)
        .build()
        .unwrap();
    let s = &scan.truth.scatterers[0];
    let mut cfg = wide_config(600);
    cfg.wire_edge = Edge::Trailing;
    let out = reconstruct(&scan, &cfg);
    // The trailing edge may only cross the scatterer if the scan runs long
    // enough; check there is a peak and it is in the right place, else
    // check the leading edge instead (geometry-dependent).
    if let Some(peak) = out.image.pixel_peak_depth(s.row, s.col, &cfg) {
        let tol = 2.0 * scan.geometry.wire.step.norm() + 2.0 * cfg.bin_width();
        assert!(
            (peak - s.depth).abs() <= tol,
            "trailing-edge peak {peak} vs truth {} (tol {tol})",
            s.depth
        );
    }
}

#[test]
fn defective_pixels_do_not_pollute_the_reconstruction() {
    // A pixel stuck at any constant (dead or hot) produces zero
    // differentials, so the reconstruction must ignore it entirely — the
    // robustness that makes the algorithm usable on real detectors.
    use laue_wire::forward::DetectorDefects;
    let geom = laue_core::ScanGeometry::demo(6, 6, 16, -40.0, 5.0).unwrap();
    let mut plan = SamplePlan::new();
    let mapper = geom.mapper().unwrap();
    let pixel = geom.detector.pixel_to_xyz(2, 2).unwrap();
    let d0 = mapper
        .depth(pixel, geom.wire.center(0).unwrap(), Edge::Leading)
        .unwrap();
    let d15 = mapper
        .depth(pixel, geom.wire.center(15).unwrap(), Edge::Leading)
        .unwrap();
    plan.add_point(2, 2, (d0 + d15) / 2.0, 200.0).unwrap();
    let opts = RenderOptions {
        background: 10.0,
        defects: DetectorDefects {
            dead: vec![(0, 0)],
            hot: vec![(5, 5, 60_000.0)],
        },
        ..Default::default()
    };
    let images = render_stack(&geom, &plan, &opts).unwrap();
    let view = ScanView::new(&images, 16, 6, 6).unwrap();
    let cfg = wide_config(300);
    let out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
    // Defective pixels contribute nothing.
    assert!(out.image.depth_profile(0, 0).iter().all(|&v| v == 0.0));
    assert!(out.image.depth_profile(5, 5).iter().all(|&v| v == 0.0));
    // The real scatterer is still recovered.
    let peak = out.image.pixel_peak_depth(2, 2, &cfg).unwrap();
    let s = &plan.scatterers[0];
    assert!((peak - s.depth).abs() <= 2.0 * geom.wire.step.norm() + 2.0 * cfg.bin_width());
}

#[test]
fn two_depths_in_one_pixel_resolved() {
    // Two scatterers on the same pixel, 60 µm apart: the depth profile must
    // show two distinct peaks.
    let geom = laue_core::ScanGeometry::demo(6, 6, 40, -80.0, 4.0).unwrap();
    let mapper = geom.mapper().unwrap();
    let (r, c) = (3, 3);
    let pixel = geom.detector.pixel_to_xyz(r, c).unwrap();
    let d0 = mapper
        .depth(pixel, geom.wire.center(0).unwrap(), Edge::Leading)
        .unwrap();
    let d39 = mapper
        .depth(pixel, geom.wire.center(39).unwrap(), Edge::Leading)
        .unwrap();
    let (lo, hi) = (d0.min(d39), d0.max(d39));
    let da = lo + (hi - lo) * 0.3;
    let db = lo + (hi - lo) * 0.3 + 60.0;
    assert!(db < hi, "second depth must stay inside the sweep");
    let mut plan = SamplePlan::new();
    plan.add_point(r, c, da, 200.0).unwrap();
    plan.add_point(r, c, db, 150.0).unwrap();
    let images = render_stack(&geom, &plan, &RenderOptions::default()).unwrap();
    let view = ScanView::new(&images, 40, 6, 6).unwrap();
    let cfg = wide_config(750); // 4 µm bins
    let out = cpu::reconstruct_seq(&view, &geom, &cfg).unwrap();
    let profile = out.image.depth_profile(r, c);
    // Count local maxima above a quarter of the global max.
    let max = profile.iter().cloned().fold(0.0f64, f64::max);
    let mut peaks = Vec::new();
    for i in 1..profile.len() - 1 {
        if profile[i] > profile[i - 1] && profile[i] >= profile[i + 1] && profile[i] > max * 0.25 {
            peaks.push(cfg.bin_center(i));
        }
    }
    assert!(
        peaks.len() >= 2,
        "expected two depth peaks near {da:.1} and {db:.1}, found {peaks:?}"
    );
    let near = |target: f64| peaks.iter().any(|p| (p - target).abs() < 20.0);
    assert!(
        near(da) && near(db),
        "peaks {peaks:?} vs truths {da:.1}, {db:.1}"
    );
}
