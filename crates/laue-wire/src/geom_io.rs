//! Geometry ↔ mh5-attribute serialization.
//!
//! A scan file carries its full beamline calibration as attributes of the
//! `/entry/geometry` group, the way beamline HDF5 files carry calibration in
//! NXtransformations-style metadata.

use laue_core::ScanGeometry;
use laue_geometry::{Beam, DetectorGeometry, Rotation, Vec3, WireGeometry};
use mh5::{AttrValue, FileReader, FileWriter, ObjectId};

use crate::{Result, WireError};

fn vec3_attr(v: Vec3) -> AttrValue {
    AttrValue::FloatArray(vec![v.x, v.y, v.z])
}

fn attr_vec3(value: &AttrValue, name: &str) -> Result<Vec3> {
    let a = value
        .as_float_array()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| WireError::MissingField(format!("{name} (3-element float array)")))?;
    Ok(Vec3::new(a[0], a[1], a[2]))
}

/// Write the calibration attributes onto `group`.
pub fn write_geometry(w: &mut FileWriter, group: ObjectId, geom: &ScanGeometry) -> Result<()> {
    w.set_attr(group, "beam_origin", vec3_attr(geom.beam.origin))?;
    w.set_attr(group, "beam_direction", vec3_attr(geom.beam.direction))?;
    w.set_attr(group, "wire_axis", vec3_attr(geom.wire.axis))?;
    w.set_attr(group, "wire_radius_um", AttrValue::Float(geom.wire.radius))?;
    w.set_attr(group, "wire_origin", vec3_attr(geom.wire.origin))?;
    w.set_attr(group, "wire_step", vec3_attr(geom.wire.step))?;
    w.set_attr(
        group,
        "wire_n_steps",
        AttrValue::Int(geom.wire.n_steps as i64),
    )?;
    w.set_attr(
        group,
        "det_rows",
        AttrValue::Int(geom.detector.n_rows as i64),
    )?;
    w.set_attr(
        group,
        "det_cols",
        AttrValue::Int(geom.detector.n_cols as i64),
    )?;
    w.set_attr(
        group,
        "det_pitch_row_um",
        AttrValue::Float(geom.detector.pixel_pitch_row),
    )?;
    w.set_attr(
        group,
        "det_pitch_col_um",
        AttrValue::Float(geom.detector.pixel_pitch_col),
    )?;
    let r = &geom.detector.rotation.rows;
    w.set_attr(
        group,
        "det_rotation",
        AttrValue::FloatArray(vec![
            r[0].x, r[0].y, r[0].z, r[1].x, r[1].y, r[1].z, r[2].x, r[2].y, r[2].z,
        ]),
    )?;
    w.set_attr(
        group,
        "det_translation",
        vec3_attr(geom.detector.translation),
    )?;
    Ok(())
}

fn require<'a>(r: &'a FileReader, group: ObjectId, name: &str) -> Result<&'a AttrValue> {
    r.attr(group, name)?
        .ok_or_else(|| WireError::MissingField(format!("attribute {name}")))
}

/// Read the calibration attributes back from `group`.
pub fn read_geometry(r: &FileReader, group: ObjectId) -> Result<ScanGeometry> {
    let beam = Beam::new(
        attr_vec3(require(r, group, "beam_origin")?, "beam_origin")?,
        attr_vec3(require(r, group, "beam_direction")?, "beam_direction")?,
    )?;
    let n_steps = require(r, group, "wire_n_steps")?
        .as_int()
        .ok_or_else(|| WireError::MissingField("wire_n_steps (int)".into()))?;
    if n_steps < 2 {
        return Err(WireError::InvalidParameter(format!(
            "wire_n_steps {n_steps} < 2"
        )));
    }
    let wire = WireGeometry::new(
        attr_vec3(require(r, group, "wire_axis")?, "wire_axis")?,
        require(r, group, "wire_radius_um")?
            .as_float()
            .ok_or_else(|| WireError::MissingField("wire_radius_um (float)".into()))?,
        attr_vec3(require(r, group, "wire_origin")?, "wire_origin")?,
        attr_vec3(require(r, group, "wire_step")?, "wire_step")?,
        n_steps as usize,
    )?;
    let rot = require(r, group, "det_rotation")?
        .as_float_array()
        .filter(|a| a.len() == 9)
        .ok_or_else(|| WireError::MissingField("det_rotation (9 floats)".into()))?;
    let rotation = Rotation {
        rows: [
            Vec3::new(rot[0], rot[1], rot[2]),
            Vec3::new(rot[3], rot[4], rot[5]),
            Vec3::new(rot[6], rot[7], rot[8]),
        ],
    };
    let n_rows = require(r, group, "det_rows")?
        .as_int()
        .ok_or_else(|| WireError::MissingField("det_rows (int)".into()))?;
    let n_cols = require(r, group, "det_cols")?
        .as_int()
        .ok_or_else(|| WireError::MissingField("det_cols (int)".into()))?;
    let detector = DetectorGeometry::new(
        n_rows as usize,
        n_cols as usize,
        require(r, group, "det_pitch_row_um")?
            .as_float()
            .ok_or_else(|| WireError::MissingField("det_pitch_row_um".into()))?,
        require(r, group, "det_pitch_col_um")?
            .as_float()
            .ok_or_else(|| WireError::MissingField("det_pitch_col_um".into()))?,
        rotation,
        attr_vec3(require(r, group, "det_translation")?, "det_translation")?,
    )?;
    Ok(ScanGeometry {
        beam,
        wire,
        detector,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_round_trips_through_attrs() {
        let geom = ScanGeometry::demo(8, 10, 16, -25.0, 3.5).unwrap();
        let path = std::env::temp_dir().join(format!("geom_io_{}.mh5", std::process::id()));
        let mut w = FileWriter::create(&path).unwrap();
        let g = w.create_group(FileWriter::ROOT, "geometry").unwrap();
        write_geometry(&mut w, g, &geom).unwrap();
        w.finish().unwrap();

        let r = FileReader::open(&path).unwrap();
        let g = r.resolve_path("/geometry").unwrap();
        let back = read_geometry(&r, g).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(back.beam, geom.beam);
        assert_eq!(back.wire, geom.wire);
        assert_eq!(back.detector, geom.detector);
    }

    #[test]
    fn missing_attr_is_a_clean_error() {
        let geom = ScanGeometry::demo(4, 4, 4, 0.0, 5.0).unwrap();
        let path = std::env::temp_dir().join(format!("geom_io_missing_{}.mh5", std::process::id()));
        let mut w = FileWriter::create(&path).unwrap();
        let g = w.create_group(FileWriter::ROOT, "geometry").unwrap();
        write_geometry(&mut w, g, &geom).unwrap();
        // Clobber one attribute with the wrong type.
        w.set_attr(g, "wire_radius_um", AttrValue::Str("oops".into()))
            .unwrap();
        w.finish().unwrap();

        let r = FileReader::open(&path).unwrap();
        let g = r.resolve_path("/geometry").unwrap();
        assert!(matches!(
            read_geometry(&r, g),
            Err(WireError::MissingField(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
