//! Forward model: render a wire-scan image stack from a sample plan.
//!
//! For every wire step, a scatterer contributes its intensity to its pixel
//! unless the straight path from its depth point to the pixel passes
//! through the wire — decided by the *same* tangent geometry
//! ([`DepthMapper::occludes`]) the reconstruction uses, so synthetic data
//! and reconstruction share one geometric truth.

use laue_core::ScanGeometry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scatterer::SamplePlan;
use crate::Result;

/// Render options.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderOptions {
    /// Constant background counts added to every pixel of every image.
    pub background: f64,
    /// Gaussian read/shot-noise amplitude: each pixel value `v` is jittered
    /// by `N(0, noise · √max(v, 1))`. Zero disables noise (deterministic).
    pub noise: f64,
    /// RNG seed for the noise.
    pub seed: u64,
    /// Detector defects applied after rendering.
    pub defects: DetectorDefects,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            background: 0.0,
            noise: 0.0,
            seed: 0,
            defects: DetectorDefects::default(),
        }
    }
}

/// Detector defects: pixels that misreport in every image.
///
/// Because the reconstruction works on *differences* between consecutive
/// images, a pixel stuck at any constant — dead at zero or hot at
/// saturation — contributes nothing; these options exist so tests can
/// prove that robustness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectorDefects {
    /// Pixels reading 0 in every image.
    pub dead: Vec<(usize, usize)>,
    /// Pixels stuck at the given value in every image.
    pub hot: Vec<(usize, usize, f64)>,
}

/// Render the full stack: `n_steps` images of `n_rows × n_cols`, flattened
/// `stack[z][row][col]`.
pub fn render_stack(
    geom: &ScanGeometry,
    plan: &SamplePlan,
    opts: &RenderOptions,
) -> Result<Vec<f64>> {
    let mapper = geom.mapper().map_err(|e| match e {
        laue_core::CoreError::Geometry(g) => crate::WireError::Geometry(g),
        other => crate::WireError::InvalidParameter(other.to_string()),
    })?;
    let (p, m, n) = (
        geom.wire.n_steps,
        geom.detector.n_rows,
        geom.detector.n_cols,
    );
    let mut stack = vec![opts.background; p * m * n];

    // Precompute each scatterer's pixel position and source point once.
    for s in &plan.scatterers {
        if s.row >= m || s.col >= n {
            return Err(crate::WireError::InvalidParameter(format!(
                "scatterer at ({}, {}) outside {m}×{n} detector",
                s.row, s.col
            )));
        }
        let pixel = geom
            .detector
            .pixel_to_xyz(s.row, s.col)
            .map_err(crate::WireError::Geometry)?;
        for z in 0..p {
            let wire = geom.wire.center(z).map_err(crate::WireError::Geometry)?;
            if !mapper.occludes(s.depth, pixel, wire) {
                stack[(z * m + s.row) * n + s.col] += s.intensity;
            }
        }
    }

    if opts.noise > 0.0 {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        for v in &mut stack {
            // Box–Muller-free normal approximation: the sum of 4 centred
            // uniforms has variance 4/12 = 1/3; ×√3 gives unit variance.
            let u: f64 = (0..4).map(|_| rng.gen::<f64>() - 0.5).sum();
            let gauss = u * 3.0f64.sqrt();
            *v += opts.noise * v.abs().max(1.0).sqrt() * gauss;
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    // Defects override everything, in every image.
    for &(r, c) in &opts.defects.dead {
        if r >= m || c >= n {
            return Err(crate::WireError::InvalidParameter(format!(
                "dead pixel ({r}, {c}) outside {m}×{n} detector"
            )));
        }
        for z in 0..p {
            stack[(z * m + r) * n + c] = 0.0;
        }
    }
    for &(r, c, value) in &opts.defects.hot {
        if r >= m || c >= n {
            return Err(crate::WireError::InvalidParameter(format!(
                "hot pixel ({r}, {c}) outside {m}×{n} detector"
            )));
        }
        for z in 0..p {
            stack[(z * m + r) * n + c] = value;
        }
    }
    Ok(stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laue_geometry::WireEdge;

    fn demo() -> ScanGeometry {
        ScanGeometry::demo(6, 6, 12, -30.0, 4.0).unwrap()
    }

    /// Depth inside the pixel's sweep window so the wire actually crosses
    /// the scatterer during the scan.
    fn sweep_midpoint(geom: &ScanGeometry, r: usize, c: usize) -> f64 {
        let mapper = geom.mapper().unwrap();
        let pixel = geom.detector.pixel_to_xyz(r, c).unwrap();
        let first = mapper
            .depth(pixel, geom.wire.center(0).unwrap(), WireEdge::Leading)
            .unwrap();
        let last = mapper
            .depth(
                pixel,
                geom.wire.center(geom.wire.n_steps - 1).unwrap(),
                WireEdge::Leading,
            )
            .unwrap();
        (first + last) / 2.0
    }

    #[test]
    fn empty_plan_renders_background() {
        let geom = demo();
        let stack = render_stack(
            &geom,
            &SamplePlan::new(),
            &RenderOptions {
                background: 3.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stack.len(), 12 * 36);
        assert!(stack.iter().all(|&v| v == 3.5));
    }

    #[test]
    fn scatterer_is_progressively_occluded() {
        let geom = demo();
        let (r, c) = (3, 3);
        let depth = sweep_midpoint(&geom, r, c);
        let mut plan = SamplePlan::new();
        plan.add_point(r, c, depth, 100.0).unwrap();
        let stack = render_stack(&geom, &plan, &RenderOptions::default()).unwrap();
        let series: Vec<f64> = (0..12).map(|z| stack[(z * 6 + r) * 6 + c]).collect();
        // Visible at the start of the scan, occluded mid-scan.
        assert_eq!(
            series[0], 100.0,
            "unoccluded before the wire arrives: {series:?}"
        );
        assert!(
            series.contains(&0.0),
            "the wire must cross the ray: {series:?}"
        );
        // Monotone step down then (possibly) back up — i.e. the occluded
        // steps form one contiguous run.
        let occluded: Vec<usize> = (0..12).filter(|&z| series[z] == 0.0).collect();
        for w in occluded.windows(2) {
            assert_eq!(w[1], w[0] + 1, "occlusion must be contiguous: {series:?}");
        }
        // Other pixels stay dark.
        let total: f64 = stack.iter().sum();
        let this_pixel: f64 = series.iter().sum();
        assert_eq!(total, this_pixel);
    }

    #[test]
    fn out_of_detector_scatterer_rejected() {
        let geom = demo();
        let mut plan = SamplePlan::new();
        plan.add_point(99, 0, 10.0, 5.0).unwrap();
        assert!(render_stack(&geom, &plan, &RenderOptions::default()).is_err());
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let geom = demo();
        let mut plan = SamplePlan::new();
        let depth = sweep_midpoint(&geom, 2, 2);
        plan.add_point(2, 2, depth, 500.0).unwrap();
        let opts = RenderOptions {
            background: 10.0,
            noise: 2.0,
            seed: 42,
            ..Default::default()
        };
        let a = render_stack(&geom, &plan, &opts).unwrap();
        let b = render_stack(&geom, &plan, &opts).unwrap();
        assert_eq!(a, b, "same seed, same stack");
        let c = render_stack(&geom, &plan, &RenderOptions { seed: 43, ..opts }).unwrap();
        assert_ne!(a, c, "different seed, different noise");
        assert!(a.iter().all(|&v| v >= 0.0), "counts stay non-negative");
    }

    #[test]
    fn defective_pixels_are_stuck_in_every_image() {
        let geom = demo();
        let mut plan = SamplePlan::new();
        let depth = sweep_midpoint(&geom, 2, 2);
        plan.add_point(2, 2, depth, 100.0).unwrap();
        let opts = RenderOptions {
            background: 10.0,
            defects: DetectorDefects {
                dead: vec![(0, 0), (2, 2)], // kills the scatterer's pixel too
                hot: vec![(5, 5, 60_000.0)],
            },
            ..Default::default()
        };
        let stack = render_stack(&geom, &plan, &opts).unwrap();
        for z in 0..12 {
            assert_eq!(stack[(z * 6) * 6], 0.0, "dead pixel stays dead");
            assert_eq!(stack[(z * 6 + 2) * 6 + 2], 0.0, "dead wins over signal");
            assert_eq!(stack[(z * 6 + 5) * 6 + 5], 60_000.0, "hot pixel saturated");
        }
        // Out-of-range defects rejected.
        let bad = RenderOptions {
            defects: DetectorDefects {
                dead: vec![(9, 0)],
                hot: vec![],
            },
            ..Default::default()
        };
        assert!(render_stack(&geom, &plan, &bad).is_err());
    }

    #[test]
    fn intensities_superpose() {
        let geom = demo();
        let d1 = sweep_midpoint(&geom, 1, 1);
        let d2 = sweep_midpoint(&geom, 4, 4);
        let mut p1 = SamplePlan::new();
        p1.add_point(1, 1, d1, 50.0).unwrap();
        let mut p2 = SamplePlan::new();
        p2.add_point(4, 4, d2, 70.0).unwrap();
        let mut p12 = SamplePlan::new();
        p12.add_point(1, 1, d1, 50.0).unwrap();
        p12.add_point(4, 4, d2, 70.0).unwrap();
        let a = render_stack(&geom, &p1, &RenderOptions::default()).unwrap();
        let b = render_stack(&geom, &p2, &RenderOptions::default()).unwrap();
        let ab = render_stack(&geom, &p12, &RenderOptions::default()).unwrap();
        for i in 0..ab.len() {
            assert_eq!(ab[i], a[i] + b[i]);
        }
    }
}
