//! One-stop synthetic scan generation.
//!
//! The builder places random scatterers *inside each pixel's depth-sweep
//! window* — the range of depths the wire's leading edge crosses for that
//! pixel during the scan — so every scatterer is actually scanned and the
//! reconstruction can recover its depth. This mirrors how a real experiment
//! positions the wire travel to cover the depth region of interest.

use laue_core::ScanGeometry;
use laue_geometry::WireEdge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::forward::{render_stack, RenderOptions};
use crate::scatterer::SamplePlan;
use crate::{Result, WireError};

/// A generated scan: geometry, rendered stack, and the ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticScan {
    /// The beamline calibration used.
    pub geometry: ScanGeometry,
    /// The rendered stack `stack[z][row][col]`.
    pub images: Vec<f64>,
    /// The ground-truth scatterers.
    pub truth: SamplePlan,
}

/// Builder for [`SyntheticScan`].
#[derive(Debug, Clone)]
pub struct SyntheticScanBuilder {
    n_rows: usize,
    n_cols: usize,
    n_steps: usize,
    n_scatterers: usize,
    intensity_range: (f64, f64),
    background: f64,
    noise: f64,
    seed: u64,
    wire_z0: f64,
    step_um: f64,
    /// Keep scatterer depths this fraction away from the sweep edges.
    margin: f64,
}

impl SyntheticScanBuilder {
    /// A scan over an `n_rows × n_cols` detector with `n_steps` wire steps.
    pub fn new(n_rows: usize, n_cols: usize, n_steps: usize) -> SyntheticScanBuilder {
        SyntheticScanBuilder {
            n_rows,
            n_cols,
            n_steps,
            n_scatterers: 8,
            intensity_range: (50.0, 500.0),
            background: 10.0,
            noise: 0.0,
            seed: 0,
            wire_z0: -40.0,
            step_um: 5.0,
            margin: 0.15,
        }
    }

    /// Number of point scatterers to place.
    pub fn scatterers(mut self, n: usize) -> Self {
        self.n_scatterers = n;
        self
    }

    /// Scatterer intensity range (uniform).
    pub fn intensity_range(mut self, lo: f64, hi: f64) -> Self {
        self.intensity_range = (lo, hi);
        self
    }

    /// Constant background counts.
    pub fn background(mut self, b: f64) -> Self {
        self.background = b;
        self
    }

    /// Noise amplitude (0 = deterministic).
    pub fn noise(mut self, n: f64) -> Self {
        self.noise = n;
        self
    }

    /// RNG seed (scatterer placement and noise).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Wire start position and step size along the beam, µm.
    pub fn wire_travel(mut self, z0: f64, step: f64) -> Self {
        self.wire_z0 = z0;
        self.step_um = step;
        self
    }

    /// Generate the scan.
    pub fn build(&self) -> Result<SyntheticScan> {
        if self.n_scatterers == 0 {
            return Err(WireError::InvalidParameter(
                "need at least one scatterer".into(),
            ));
        }
        if self.intensity_range.0 <= 0.0 || self.intensity_range.1 < self.intensity_range.0 {
            return Err(WireError::InvalidParameter(format!(
                "bad intensity range {:?}",
                self.intensity_range
            )));
        }
        let geometry = ScanGeometry::demo(
            self.n_rows,
            self.n_cols,
            self.n_steps,
            self.wire_z0,
            self.step_um,
        )
        .map_err(|e| match e {
            laue_core::CoreError::Geometry(g) => WireError::Geometry(g),
            other => WireError::InvalidParameter(other.to_string()),
        })?;
        let mapper = geometry.mapper().map_err(|e| match e {
            laue_core::CoreError::Geometry(g) => WireError::Geometry(g),
            other => WireError::InvalidParameter(other.to_string()),
        })?;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut truth = SamplePlan::new();
        for _ in 0..self.n_scatterers {
            let row = rng.gen_range(0..self.n_rows);
            let col = rng.gen_range(0..self.n_cols);
            let pixel = geometry.detector.pixel_to_xyz(row, col)?;
            // This pixel's leading-edge sweep window.
            let d_first = mapper.depth(pixel, geometry.wire.center(0)?, WireEdge::Leading)?;
            let d_last = mapper.depth(
                pixel,
                geometry.wire.center(self.n_steps - 1)?,
                WireEdge::Leading,
            )?;
            let (lo, hi) = if d_first < d_last {
                (d_first, d_last)
            } else {
                (d_last, d_first)
            };
            let m = (hi - lo) * self.margin;
            let depth = rng.gen_range(lo + m..hi - m);
            let intensity = rng.gen_range(self.intensity_range.0..=self.intensity_range.1);
            truth.add_point(row, col, depth, intensity)?;
        }
        let images = render_stack(
            &geometry,
            &truth,
            &RenderOptions {
                background: self.background,
                noise: self.noise,
                seed: self.seed,
                ..Default::default()
            },
        )?;
        Ok(SyntheticScan {
            geometry,
            images,
            truth,
        })
    }
}

/// Detector dimensions (square) that make a u16 scan of `n_steps` images
/// approximately `target_bytes` on disk (ignoring container overhead). Used
/// by the data-set-size sweep of the paper's Fig 8.
pub fn dims_for_bytes(target_bytes: u64, n_steps: usize) -> usize {
    let per_image = target_bytes as f64 / n_steps as f64;
    let side = (per_image / 2.0).sqrt().floor() as usize;
    side.max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_per_seed() {
        let b = SyntheticScanBuilder::new(8, 8, 12).scatterers(5).seed(7);
        let s1 = b.build().unwrap();
        let s2 = b.build().unwrap();
        assert_eq!(s1.images, s2.images);
        assert_eq!(s1.truth, s2.truth);
        let s3 = b.clone().seed(8).build().unwrap();
        assert_ne!(s1.truth, s3.truth);
    }

    #[test]
    fn scatterers_land_in_their_sweep_windows() {
        let scan = SyntheticScanBuilder::new(8, 8, 16)
            .scatterers(20)
            .seed(3)
            .build()
            .unwrap();
        let mapper = scan.geometry.mapper().unwrap();
        for s in &scan.truth.scatterers {
            let pixel = scan.geometry.detector.pixel_to_xyz(s.row, s.col).unwrap();
            let d0 = mapper
                .depth(
                    pixel,
                    scan.geometry.wire.center(0).unwrap(),
                    WireEdge::Leading,
                )
                .unwrap();
            let d1 = mapper
                .depth(
                    pixel,
                    scan.geometry.wire.center(15).unwrap(),
                    WireEdge::Leading,
                )
                .unwrap();
            let (lo, hi) = if d0 < d1 { (d0, d1) } else { (d1, d0) };
            assert!(
                s.depth > lo && s.depth < hi,
                "depth {} outside [{lo}, {hi}]",
                s.depth
            );
        }
    }

    #[test]
    fn each_scatterer_is_occluded_somewhere_in_the_scan() {
        let scan = SyntheticScanBuilder::new(6, 6, 12)
            .scatterers(10)
            .background(0.0)
            .seed(11)
            .build()
            .unwrap();
        let (m, n) = (6, 6);
        // Because depths sit inside the sweep window, each scatterer's pixel
        // must lose intensity at some step.
        for s in &scan.truth.scatterers {
            let series: Vec<f64> = (0..12)
                .map(|z| scan.images[(z * m + s.row) * n + s.col])
                .collect();
            let max = series.iter().cloned().fold(f64::MIN, f64::max);
            let min = series.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                max - min >= s.intensity * 0.99,
                "scatterer at ({}, {}) never fully occluded: {series:?}",
                s.row,
                s.col
            );
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SyntheticScanBuilder::new(4, 4, 8)
            .scatterers(0)
            .build()
            .is_err());
        assert!(SyntheticScanBuilder::new(4, 4, 8)
            .intensity_range(10.0, 5.0)
            .build()
            .is_err());
        assert!(SyntheticScanBuilder::new(4, 4, 8)
            .intensity_range(0.0, 5.0)
            .build()
            .is_err());
    }

    #[test]
    fn dims_for_bytes_targets_size() {
        for (target, steps) in [(1u64 << 20, 16), (5 * (1u64 << 20), 32), (1 << 24, 64)] {
            let side = dims_for_bytes(target, steps);
            let actual = (steps * side * side * 2) as u64;
            let ratio = actual as f64 / target as f64;
            assert!(
                (0.8..=1.01).contains(&ratio),
                "target {target}, side {side}, ratio {ratio}"
            );
        }
    }
}
