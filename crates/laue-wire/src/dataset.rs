//! Scan files: geometry + image stack + optional ground truth in one `mh5`
//! container.
//!
//! Layout (mirroring a beamline HDF5 scan):
//!
//! ```text
//! /entry
//!   @creator, @seed …
//!   /geometry        (calibration attributes, see `geom_io`)
//!   images           u16 dataset, shape (n_steps, n_rows, n_cols),
//!                    chunked (1, chunk_rows, n_cols)
//!   /truth           optional ground truth (synthetic scans only)
//!     row, col       u32 datasets
//!     depth, weight  f64 datasets
//! ```
//!
//! [`ScanFile`] keeps the reader open and implements
//! [`laue_core::SlabSource`], so the reconstruction pipelines stream row
//! slabs straight from chunked storage — the exact access pattern of the
//! paper's Fig 2 without ever materialising the stack.

use std::path::Path;

use laue_core::{CoreError, ScanGeometry, SlabSource};
use mh5::{AttrValue, Dtype, FileReader, FileWriter, ObjectId};

use crate::geom_io;
use crate::scatterer::{SamplePlan, Scatterer};
use crate::{Result, WireError};

/// Convert a rendered intensity to a detector count.
fn to_u16(v: f64) -> u16 {
    v.round().clamp(0.0, 65_535.0) as u16
}

/// Write a scan file.
///
/// `images` is the rendered stack `stack[z][row][col]` (values are rounded
/// and clamped to the u16 detector range, like a real camera); `chunk_rows`
/// controls the row granularity of chunked storage (and therefore the
/// finest efficient slab read).
pub fn write_scan<P: AsRef<Path>>(
    path: P,
    geom: &ScanGeometry,
    images: &[f64],
    truth: Option<&SamplePlan>,
    chunk_rows: usize,
) -> Result<()> {
    let (p, m, n) = (
        geom.wire.n_steps,
        geom.detector.n_rows,
        geom.detector.n_cols,
    );
    if images.len() != p * m * n {
        return Err(WireError::InvalidParameter(format!(
            "stack of {} values does not match {p}×{m}×{n}",
            images.len()
        )));
    }
    let chunk_rows = chunk_rows.clamp(1, m);
    let mut w = FileWriter::create(path)?;
    let entry = w.create_group(FileWriter::ROOT, "entry")?;
    w.set_attr(
        entry,
        "creator",
        AttrValue::Str("laue-wire synthetic scan".into()),
    )?;
    let g = w.create_group(entry, "geometry")?;
    geom_io::write_geometry(&mut w, g, geom)?;

    let counts: Vec<u16> = images.iter().map(|&v| to_u16(v)).collect();
    let ds = w.create_dataset(entry, "images", Dtype::U16, &[p, m, n], &[1, chunk_rows, n])?;
    w.write_all(ds, &counts)?;

    if let Some(plan) = truth {
        if !plan.is_empty() {
            let t = w.create_group(entry, "truth")?;
            let k = plan.len();
            let rows: Vec<u32> = plan.scatterers.iter().map(|s| s.row as u32).collect();
            let cols: Vec<u32> = plan.scatterers.iter().map(|s| s.col as u32).collect();
            let depth: Vec<f64> = plan.scatterers.iter().map(|s| s.depth).collect();
            let weight: Vec<f64> = plan.scatterers.iter().map(|s| s.intensity).collect();
            let d = w.create_dataset(t, "row", Dtype::U32, &[k], &[k])?;
            w.write_all(d, &rows)?;
            let d = w.create_dataset(t, "col", Dtype::U32, &[k], &[k])?;
            w.write_all(d, &cols)?;
            let d = w.create_dataset(t, "depth", Dtype::F64, &[k], &[k])?;
            w.write_all(d, &depth)?;
            let d = w.create_dataset(t, "weight", Dtype::F64, &[k], &[k])?;
            w.write_all(d, &weight)?;
        }
    }
    w.finish()?;
    Ok(())
}

/// An open scan file: geometry parsed, stack streamable.
#[derive(Debug)]
pub struct ScanFile {
    reader: FileReader,
    images: ObjectId,
    geometry: ScanGeometry,
    truth: Option<SamplePlan>,
    n_images: usize,
    n_rows: usize,
    n_cols: usize,
}

impl ScanFile {
    /// Open and validate a scan file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<ScanFile> {
        let reader = FileReader::open(path)?;
        let entry = reader
            .resolve_path("/entry")
            .map_err(|_| WireError::MissingField("/entry group".into()))?;
        let g = reader
            .resolve_path("/entry/geometry")
            .map_err(|_| WireError::MissingField("/entry/geometry group".into()))?;
        let geometry = geom_io::read_geometry(&reader, g)?;
        let images = reader
            .child(entry, "images")?
            .ok_or_else(|| WireError::MissingField("/entry/images dataset".into()))?;
        let info = reader.dataset_info(images)?;
        if info.shape.len() != 3 {
            return Err(WireError::MissingField("3-D images dataset".into()));
        }
        if info.dtype != Dtype::U16 {
            return Err(WireError::MissingField("u16 images dataset".into()));
        }
        let (p, m, n) = (info.shape[0], info.shape[1], info.shape[2]);
        if p != geometry.wire.n_steps
            || m != geometry.detector.n_rows
            || n != geometry.detector.n_cols
        {
            return Err(WireError::InvalidParameter(format!(
                "images shape {p}×{m}×{n} disagrees with geometry \
                 {}×{}×{}",
                geometry.wire.n_steps, geometry.detector.n_rows, geometry.detector.n_cols
            )));
        }
        let truth = Self::read_truth(&reader)?;
        Ok(ScanFile {
            reader,
            images,
            geometry,
            truth,
            n_images: p,
            n_rows: m,
            n_cols: n,
        })
    }

    fn read_truth(reader: &FileReader) -> Result<Option<SamplePlan>> {
        let Ok(t) = reader.resolve_path("/entry/truth") else {
            return Ok(None);
        };
        let get = |name: &str| -> Result<ObjectId> {
            reader
                .child(t, name)?
                .ok_or_else(|| WireError::MissingField(format!("/entry/truth/{name}")))
        };
        let rows: Vec<u32> = reader.read_all(get("row")?)?;
        let cols: Vec<u32> = reader.read_all(get("col")?)?;
        let depth: Vec<f64> = reader.read_all(get("depth")?)?;
        let weight: Vec<f64> = reader.read_all(get("weight")?)?;
        if rows.len() != cols.len() || rows.len() != depth.len() || rows.len() != weight.len() {
            return Err(WireError::MissingField("consistent truth arrays".into()));
        }
        let mut plan = SamplePlan::new();
        for i in 0..rows.len() {
            plan.scatterers.push(Scatterer {
                row: rows[i] as usize,
                col: cols[i] as usize,
                depth: depth[i],
                intensity: weight[i],
            });
        }
        Ok(Some(plan))
    }

    /// The calibration stored in the file.
    pub fn geometry(&self) -> &ScanGeometry {
        &self.geometry
    }

    /// Ground truth, when the file carries one.
    pub fn truth(&self) -> Option<&SamplePlan> {
        self.truth.as_ref()
    }

    /// Total file size on disk, bytes.
    pub fn file_len(&self) -> u64 {
        self.reader.file_len()
    }

    /// Read the whole stack as `f64` (small scans / tests).
    pub fn read_full(&self) -> Result<Vec<f64>> {
        let counts: Vec<u16> = self.reader.read_all(self.images)?;
        Ok(counts.into_iter().map(f64::from).collect())
    }
}

impl SlabSource for ScanFile {
    fn n_images(&self) -> usize {
        self.n_images
    }

    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn read_slab(&mut self, row0: usize, n_rows_slab: usize) -> laue_core::Result<Vec<f64>> {
        let counts: Vec<u16> = self
            .reader
            .read_hyperslab(
                self.images,
                &[0, row0, 0],
                &[self.n_images, n_rows_slab, self.n_cols],
            )
            .map_err(|e| CoreError::Source(format!("mh5 hyperslab read failed: {e}")))?;
        Ok(counts.into_iter().map(f64::from).collect())
    }
}

/// Alias used by the pipeline: open a scan for streaming.
pub fn read_scan<P: AsRef<Path>>(path: P) -> Result<ScanFile> {
    ScanFile::open(path)
}

/// Concatenate scans that were acquired in parts (an aborted-and-resumed
/// wire scan): the geometries must agree on everything except the step
/// count, and each part's wire trajectory must continue exactly where the
/// previous part stopped (`origin_b = origin_a + n_a · step`).
///
/// Writes a single combined scan (truth tables are merged when every part
/// carries one) and returns the total number of wire steps.
pub fn concat_scans<P: AsRef<Path>>(parts: &[P], out: P) -> Result<usize> {
    if parts.len() < 2 {
        return Err(WireError::InvalidParameter(
            "concatenation needs at least two parts".into(),
        ));
    }
    let scans: Vec<ScanFile> = parts.iter().map(ScanFile::open).collect::<Result<_>>()?;
    let first = &scans[0];
    let g0 = first.geometry();
    let mut total_steps = g0.wire.n_steps;
    for (i, scan) in scans.iter().enumerate().skip(1) {
        let g = scan.geometry();
        if g.detector != g0.detector || g.beam != g0.beam {
            return Err(WireError::InvalidParameter(format!(
                "part {i} has a different detector/beam calibration"
            )));
        }
        if g.wire.axis != g0.wire.axis
            || g.wire.radius != g0.wire.radius
            || g.wire.step != g0.wire.step
        {
            return Err(WireError::InvalidParameter(format!(
                "part {i} has a different wire (axis/radius/step)"
            )));
        }
        let expected_origin = g0.wire.origin + g0.wire.step * total_steps as f64;
        if !g.wire.origin.approx_eq(expected_origin, 1e-6) {
            return Err(WireError::InvalidParameter(format!(
                "part {i} does not continue the scan: origin {:?}, expected {expected_origin:?}",
                g.wire.origin
            )));
        }
        total_steps += g.wire.n_steps;
    }

    let combined_geom = laue_core::ScanGeometry {
        beam: g0.beam,
        wire: laue_geometry::WireGeometry::new(
            g0.wire.axis,
            g0.wire.radius,
            g0.wire.origin,
            g0.wire.step,
            total_steps,
        )?,
        detector: g0.detector.clone(),
    };
    let (m, n) = (g0.detector.n_rows, g0.detector.n_cols);
    let mut images = Vec::with_capacity(total_steps * m * n);
    let mut truth = SamplePlan::new();
    let mut all_truth = true;
    for scan in &scans {
        images.extend(scan.read_full()?);
        match scan.truth() {
            Some(t) => truth.scatterers.extend(t.scatterers.iter().copied()),
            None => all_truth = false,
        }
    }
    write_scan(
        out,
        &combined_geom,
        &images,
        if all_truth { Some(&truth) } else { None },
        8,
    )?;
    Ok(total_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("laue_scan_{}_{name}.mh5", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn demo_scan() -> (ScanGeometry, Vec<f64>, SamplePlan) {
        let geom = ScanGeometry::demo(6, 5, 8, -20.0, 4.0).unwrap();
        let mut plan = SamplePlan::new();
        plan.add_point(2, 3, 10.0, 120.0).unwrap();
        plan.add_point(4, 1, -15.0, 60.0).unwrap();
        let images = crate::forward::render_stack(
            &geom,
            &plan,
            &crate::forward::RenderOptions {
                background: 5.0,
                ..Default::default()
            },
        )
        .unwrap();
        (geom, images, plan)
    }

    #[test]
    fn write_open_round_trip() {
        let (geom, images, plan) = demo_scan();
        let path = tmp("roundtrip");
        write_scan(&path, &geom, &images, Some(&plan), 2).unwrap();
        let scan = ScanFile::open(&path).unwrap();
        assert_eq!(scan.geometry().wire.n_steps, 8);
        assert_eq!(scan.n_images(), 8);
        assert_eq!(scan.n_rows(), 6);
        assert_eq!(scan.n_cols(), 5);
        assert_eq!(scan.truth().unwrap().len(), 2);
        assert!(scan.file_len() > 0);
        let full = scan.read_full().unwrap();
        // Values round-trip through u16 rounding.
        for (a, b) in images.iter().zip(&full) {
            assert!((a - b).abs() <= 0.5, "{a} vs {b}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn slab_source_matches_full_read() {
        let (geom, images, _) = demo_scan();
        let path = tmp("slabs");
        write_scan(&path, &geom, &images, None, 2).unwrap();
        let mut scan = ScanFile::open(&path).unwrap();
        assert!(scan.truth().is_none());
        let full = scan.read_full().unwrap();
        // Read rows 1..4 via the slab API and compare.
        let slab = scan.read_slab(1, 3).unwrap();
        for z in 0..8 {
            for r in 0..3 {
                for c in 0..5 {
                    assert_eq!(slab[(z * 3 + r) * 5 + c], full[(z * 6 + (r + 1)) * 5 + c]);
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_stack_length_rejected() {
        let (geom, images, _) = demo_scan();
        let path = tmp("badlen");
        assert!(matches!(
            write_scan(&path, &geom, &images[..10], None, 2),
            Err(WireError::InvalidParameter(_))
        ));
    }

    #[test]
    fn values_clamp_to_detector_range() {
        let geom = ScanGeometry::demo(2, 2, 2, 0.0, 5.0).unwrap();
        let images = vec![-5.0, 1e9, 42.4, 42.6, 0.0, 1.0, 2.0, 3.0];
        let path = tmp("clamp");
        write_scan(&path, &geom, &images, None, 1).unwrap();
        let scan = ScanFile::open(&path).unwrap();
        let full = scan.read_full().unwrap();
        assert_eq!(full[0], 0.0, "negatives clamp to zero");
        assert_eq!(full[1], 65_535.0, "overflow clamps to full well");
        assert_eq!(full[2], 42.0);
        assert_eq!(full[3], 43.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concat_resumed_scan_parts() {
        // One 16-step scan rendered whole, then re-rendered as two 8-step
        // parts; concatenation must reproduce the whole scan.
        let whole_geom = ScanGeometry::demo(5, 5, 16, -40.0, 5.0).unwrap();
        let mut plan = SamplePlan::new();
        plan.add_point(2, 2, 10.0, 150.0).unwrap();
        let whole = crate::forward::render_stack(
            &whole_geom,
            &plan,
            &crate::forward::RenderOptions {
                background: 5.0,
                ..Default::default()
            },
        )
        .unwrap();

        let part = |first_step: usize, n: usize| -> ScanGeometry {
            let origin = whole_geom.wire.origin + whole_geom.wire.step * first_step as f64;
            ScanGeometry {
                beam: whole_geom.beam,
                wire: laue_geometry::WireGeometry::new(
                    whole_geom.wire.axis,
                    whole_geom.wire.radius,
                    origin,
                    whole_geom.wire.step,
                    n,
                )
                .unwrap(),
                detector: whole_geom.detector.clone(),
            }
        };
        let ga = part(0, 8);
        let gb = part(8, 8);
        let (m, n) = (5, 5);
        let pa = tmp("concat_a");
        let pb = tmp("concat_b");
        let pc = tmp("concat_out");
        write_scan(&pa, &ga, &whole[..8 * m * n], Some(&plan), 2).unwrap();
        write_scan(&pb, &gb, &whole[8 * m * n..], Some(&plan), 2).unwrap();
        let total = concat_scans(&[&pa, &pb], &pc).unwrap();
        assert_eq!(total, 16);
        let combined = ScanFile::open(&pc).unwrap();
        assert_eq!(combined.n_images(), 16);
        assert_eq!(combined.geometry().wire.n_steps, 16);
        assert!(combined
            .geometry()
            .wire
            .origin
            .approx_eq(whole_geom.wire.origin, 1e-9));
        let data = combined.read_full().unwrap();
        for (a, b) in data.iter().zip(&whole) {
            assert!((a - b).abs() <= 0.5, "u16 rounding only");
        }
        assert_eq!(combined.truth().unwrap().len(), 2, "truth tables merged");
        for p in [&pa, &pb, &pc] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn concat_rejects_mismatched_parts() {
        let g1 = ScanGeometry::demo(4, 4, 6, 0.0, 5.0).unwrap();
        let img1 = vec![1.0; 6 * 16];
        let pa = tmp("bad_a");
        write_scan(&pa, &g1, &img1, None, 2).unwrap();

        // Part B does not continue where A stopped.
        let g2 = ScanGeometry::demo(4, 4, 6, 100.0, 5.0).unwrap();
        let pb = tmp("bad_b");
        write_scan(&pb, &g2, &img1, None, 2).unwrap();
        let pc = tmp("bad_out");
        let err = concat_scans(&[&pa, &pb], &pc).unwrap_err();
        assert!(err.to_string().contains("does not continue"), "{err}");

        // Different detector.
        let g3 = ScanGeometry::demo(4, 5, 6, 30.0, 5.0).unwrap();
        let pd = tmp("bad_d");
        write_scan(&pd, &g3, &vec![1.0; 6 * 20], None, 2).unwrap();
        let err = concat_scans(&[&pa, &pd], &pc).unwrap_err();
        assert!(err.to_string().contains("detector"), "{err}");

        // A single part is rejected.
        assert!(concat_scans(&[&pa], &pc).is_err());
        for p in [&pa, &pb, &pd] {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(&pc).ok();
    }

    #[test]
    fn missing_pieces_detected() {
        // A plain mh5 file without the scan structure.
        let path = tmp("notascan");
        let mut w = FileWriter::create(&path).unwrap();
        w.create_group(FileWriter::ROOT, "whatever").unwrap();
        w.finish().unwrap();
        assert!(matches!(
            ScanFile::open(&path),
            Err(WireError::MissingField(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
