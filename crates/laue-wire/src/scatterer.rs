//! Ground-truth depth structure: scatterers.

use crate::{Result, WireError};

/// A point scatterer: a source of diffracted intensity at a known depth
/// along the incident beam, seen by one detector pixel.
///
/// Real Laue spots span several pixels; an extended spot is simply several
/// scatterers sharing a depth (see [`SamplePlan::add_blob`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// Detector row of the pixel that sees this scatterer.
    pub row: usize,
    /// Detector column.
    pub col: usize,
    /// Depth along the beam, µm.
    pub depth: f64,
    /// Emitted intensity (detector counts when unoccluded).
    pub intensity: f64,
}

/// The ground-truth sample: a collection of scatterers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SamplePlan {
    /// All scatterers, in insertion order.
    pub scatterers: Vec<Scatterer>,
}

impl SamplePlan {
    /// Empty plan.
    pub fn new() -> SamplePlan {
        SamplePlan::default()
    }

    /// Add one point scatterer.
    pub fn add_point(&mut self, row: usize, col: usize, depth: f64, intensity: f64) -> Result<()> {
        if intensity <= 0.0 || !intensity.is_finite() {
            return Err(WireError::InvalidParameter(format!(
                "scatterer intensity {intensity} must be positive and finite"
            )));
        }
        if !depth.is_finite() {
            return Err(WireError::InvalidParameter(
                "scatterer depth must be finite".into(),
            ));
        }
        self.scatterers.push(Scatterer {
            row,
            col,
            depth,
            intensity,
        });
        Ok(())
    }

    /// Add a Gaussian-profiled spot centred at `(row, col)` with `sigma`
    /// pixels of spread, clipped to the detector; all parts share `depth`.
    /// Pixels receiving less than 1 % of the peak are dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn add_blob(
        &mut self,
        row: usize,
        col: usize,
        depth: f64,
        peak_intensity: f64,
        sigma: f64,
        n_rows: usize,
        n_cols: usize,
    ) -> Result<usize> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(WireError::InvalidParameter(format!(
                "sigma {sigma} must be positive"
            )));
        }
        let reach = (3.0 * sigma).ceil() as isize;
        let mut added = 0;
        for dr in -reach..=reach {
            for dc in -reach..=reach {
                let r = row as isize + dr;
                let c = col as isize + dc;
                if r < 0 || c < 0 || r as usize >= n_rows || c as usize >= n_cols {
                    continue;
                }
                let w = (-((dr * dr + dc * dc) as f64) / (2.0 * sigma * sigma)).exp();
                if w < 0.01 {
                    continue;
                }
                self.add_point(r as usize, c as usize, depth, peak_intensity * w)?;
                added += 1;
            }
        }
        Ok(added)
    }

    /// Total emitted intensity.
    pub fn total_intensity(&self) -> f64 {
        self.scatterers.iter().map(|s| s.intensity).sum()
    }

    /// Number of scatterers.
    pub fn len(&self) -> usize {
        self.scatterers.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.scatterers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_point_validates() {
        let mut p = SamplePlan::new();
        assert!(p.add_point(0, 0, 10.0, 5.0).is_ok());
        assert!(p.add_point(0, 0, 10.0, 0.0).is_err());
        assert!(p.add_point(0, 0, 10.0, -3.0).is_err());
        assert!(p.add_point(0, 0, f64::NAN, 5.0).is_err());
        assert!(p.add_point(0, 0, 10.0, f64::INFINITY).is_err());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn blob_spreads_over_pixels() {
        let mut p = SamplePlan::new();
        let n = p.add_blob(4, 4, 25.0, 100.0, 1.0, 9, 9).unwrap();
        assert!(n > 1, "blob must cover several pixels");
        // Centre pixel carries the peak.
        let centre = p
            .scatterers
            .iter()
            .find(|s| s.row == 4 && s.col == 4)
            .expect("centre present");
        assert_eq!(centre.intensity, 100.0);
        for s in &p.scatterers {
            assert_eq!(s.depth, 25.0);
            assert!(s.intensity <= 100.0);
        }
    }

    #[test]
    fn blob_clips_at_detector_edge() {
        let mut p = SamplePlan::new();
        let n = p.add_blob(0, 0, 10.0, 50.0, 1.5, 4, 4).unwrap();
        assert!(n >= 1);
        for s in &p.scatterers {
            assert!(s.row < 4 && s.col < 4);
        }
    }

    #[test]
    fn totals() {
        let mut p = SamplePlan::new();
        p.add_point(0, 0, 1.0, 10.0).unwrap();
        p.add_point(1, 1, 2.0, 15.0).unwrap();
        assert_eq!(p.total_intensity(), 25.0);
    }
}
