//! `laue-wire` — forward model and synthetic-workload generator for
//! wire-scan Laue microscopy.
//!
//! The paper evaluates on proprietary HDF5 scans from the 34-ID-E detector.
//! This crate replaces them with *physically consistent* synthetic scans:
//! point scatterers with known depths are placed along each pixel's
//! depth-sweep window, and the detector images are rendered by the **same
//! occlusion geometry** ([`laue_geometry::DepthMapper::occludes`]) that the
//! reconstruction triangulates against. The reconstruction therefore has a
//! ground truth to round-trip against — something the original evaluation
//! could not check — while the data volume, value distribution and sparsity
//! knobs reproduce the paper's workload axes (data-set size, pixel
//! percentage).
//!
//! * [`Scatterer`] / [`SamplePlan`] — the ground-truth depth structure.
//! * [`forward`] — renders a wire-scan image stack from a plan.
//! * [`builder::SyntheticScanBuilder`] — one-stop random scan generation.
//! * [`dataset`] — writes/reads scans (geometry + stack + truth) as `mh5`
//!   files, the pipeline's interchange format.

pub mod builder;
pub mod dataset;
pub mod forward;
pub mod geom_io;
pub mod plans;
pub mod scatterer;

pub use builder::{SyntheticScan, SyntheticScanBuilder};
pub use dataset::{concat_scans, read_scan, write_scan, ScanFile};
pub use forward::render_stack;
pub use scatterer::{SamplePlan, Scatterer};

/// Errors from generation or dataset I/O.
#[derive(Debug)]
pub enum WireError {
    /// Geometry construction/triangulation failed.
    Geometry(laue_geometry::GeometryError),
    /// Container I/O failed.
    Mh5(mh5::Mh5Error),
    /// The file lacks required structure (missing attr/dataset).
    MissingField(String),
    /// Parameters out of range.
    InvalidParameter(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Geometry(e) => write!(f, "geometry error: {e}"),
            WireError::Mh5(e) => write!(f, "mh5 error: {e}"),
            WireError::MissingField(what) => write!(f, "scan file missing {what}"),
            WireError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Geometry(e) => Some(e),
            WireError::Mh5(e) => Some(e),
            _ => None,
        }
    }
}

impl From<laue_geometry::GeometryError> for WireError {
    fn from(e: laue_geometry::GeometryError) -> Self {
        WireError::Geometry(e)
    }
}

impl From<mh5::Mh5Error> for WireError {
    fn from(e: mh5::Mh5Error) -> Self {
        WireError::Mh5(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, WireError>;
