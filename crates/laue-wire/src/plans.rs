//! Reusable ground-truth sample builders for the materials-science
//! scenarios the paper's introduction motivates: depth-graded deformation
//! under an indent, buried layers, and grain boundaries.
//!
//! All builders place scatterers *inside each pixel's depth-sweep window*
//! (the depths the wire's leading edge actually crosses during the scan),
//! parameterised by a fraction of that window so the same plan description
//! works for any scan geometry.

use laue_core::ScanGeometry;

use crate::scatterer::SamplePlan;
use crate::{Result, WireError};

/// The depth window of one pixel's sweep (delegates to the planning math).
fn sweep_window(
    geom: &ScanGeometry,
    mapper: &laue_geometry::DepthMapper,
    row: usize,
    col: usize,
) -> Result<(f64, f64)> {
    laue_core::planning::sweep_window(geom, mapper, row, col).map_err(|e| match e {
        laue_core::CoreError::Geometry(g) => WireError::Geometry(g),
        other => WireError::InvalidParameter(other.to_string()),
    })
}

fn check_fraction(name: &'static str, f: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&f) || !f.is_finite() {
        return Err(WireError::InvalidParameter(format!(
            "{name} = {f} must lie in [0, 1]"
        )));
    }
    Ok(())
}

/// A buried layer: every pixel scatters from one depth at fractional sweep
/// position `depth_frac` (0 = shallow end, 1 = deep end), with uniform
/// `intensity`. Models a thin film or marker layer.
pub fn layered_sample(geom: &ScanGeometry, depth_frac: f64, intensity: f64) -> Result<SamplePlan> {
    check_fraction("depth_frac", depth_frac)?;
    let mapper = geom.mapper().map_err(|e| match e {
        laue_core::CoreError::Geometry(g) => WireError::Geometry(g),
        other => WireError::InvalidParameter(other.to_string()),
    })?;
    let mut plan = SamplePlan::new();
    for r in 0..geom.detector.n_rows {
        for c in 0..geom.detector.n_cols {
            let (lo, hi) = sweep_window(geom, &mapper, r, c)?;
            let depth = lo + (hi - lo) * (0.1 + 0.8 * depth_frac);
            plan.add_point(r, c, depth, intensity)?;
        }
    }
    Ok(plan)
}

/// A grain boundary: columns left of `boundary_col` scatter from fractional
/// depth `depth_a`, the rest from `depth_b`. Models two grains meeting at a
/// vertical boundary, the classic 34-ID polycrystal measurement.
pub fn grain_boundary(
    geom: &ScanGeometry,
    boundary_col: usize,
    depth_a: f64,
    depth_b: f64,
    intensity: f64,
) -> Result<SamplePlan> {
    check_fraction("depth_a", depth_a)?;
    check_fraction("depth_b", depth_b)?;
    if boundary_col == 0 || boundary_col >= geom.detector.n_cols {
        return Err(WireError::InvalidParameter(format!(
            "boundary_col {boundary_col} must split the {}-column detector",
            geom.detector.n_cols
        )));
    }
    let mapper = geom.mapper().map_err(|e| match e {
        laue_core::CoreError::Geometry(g) => WireError::Geometry(g),
        other => WireError::InvalidParameter(other.to_string()),
    })?;
    let mut plan = SamplePlan::new();
    for r in 0..geom.detector.n_rows {
        for c in 0..geom.detector.n_cols {
            let frac = if c < boundary_col { depth_a } else { depth_b };
            let (lo, hi) = sweep_window(geom, &mapper, r, c)?;
            let depth = lo + (hi - lo) * (0.1 + 0.8 * frac);
            plan.add_point(r, c, depth, intensity)?;
        }
    }
    Ok(plan)
}

/// Depth-graded indent damage: intensity decays exponentially below each
/// pixel's "surface" (fractional sweep position `surface_frac`) with decay
/// length `decay_frac` of the window, and laterally (Gaussian, `sigma_px`)
/// from the detector centre. Scatterers below 1 % of the peak are dropped.
pub fn indent_damage(
    geom: &ScanGeometry,
    surface_frac: f64,
    decay_frac: f64,
    sigma_px: f64,
    peak_intensity: f64,
    layers: usize,
) -> Result<SamplePlan> {
    check_fraction("surface_frac", surface_frac)?;
    if decay_frac <= 0.0 || !decay_frac.is_finite() {
        return Err(WireError::InvalidParameter(
            "decay_frac must be positive".into(),
        ));
    }
    if layers == 0 {
        return Err(WireError::InvalidParameter(
            "need at least one layer".into(),
        ));
    }
    let mapper = geom.mapper().map_err(|e| match e {
        laue_core::CoreError::Geometry(g) => WireError::Geometry(g),
        other => WireError::InvalidParameter(other.to_string()),
    })?;
    let (m, n) = (geom.detector.n_rows, geom.detector.n_cols);
    let (cr, cc) = ((m as f64 - 1.0) / 2.0, (n as f64 - 1.0) / 2.0);
    let mut plan = SamplePlan::new();
    for r in 0..m {
        for c in 0..n {
            let lateral = (-((r as f64 - cr).powi(2) + (c as f64 - cc).powi(2))
                / (2.0 * sigma_px * sigma_px))
                .exp();
            if lateral * peak_intensity < peak_intensity * 0.01 {
                continue;
            }
            let (lo, hi) = sweep_window(geom, &mapper, r, c)?;
            let window = hi - lo;
            let surface = lo + window * (0.1 + 0.8 * surface_frac);
            let usable = hi - window * 0.1 - surface;
            if usable <= 0.0 {
                continue;
            }
            for k in 0..layers {
                let below = usable * k as f64 / layers as f64;
                let intensity = peak_intensity * lateral * (-below / (decay_frac * window)).exp();
                if intensity < peak_intensity * 0.01 {
                    break;
                }
                plan.add_point(r, c, surface + below, intensity)?;
            }
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::{render_stack, RenderOptions};
    use laue_core::{cpu, ReconstructionConfig, ScanView};

    fn geom() -> ScanGeometry {
        ScanGeometry::demo(8, 8, 24, -60.0, 5.0).unwrap()
    }

    #[test]
    fn layered_sample_covers_every_pixel() {
        let g = geom();
        let plan = layered_sample(&g, 0.5, 100.0).unwrap();
        assert_eq!(plan.len(), 64);
        assert!(layered_sample(&g, 1.5, 100.0).is_err());
        assert!(layered_sample(&g, -0.1, 100.0).is_err());
    }

    #[test]
    fn layer_reconstructs_at_consistent_fraction() {
        let g = geom();
        let plan = layered_sample(&g, 0.3, 200.0).unwrap();
        let images = render_stack(&g, &plan, &RenderOptions::default()).unwrap();
        let view = ScanView::new(&images, 24, 8, 8).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 600);
        let out = cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
        let mapper = g.mapper().unwrap();
        // Each pixel's recovered depth sits near its own truth.
        let mut hits = 0;
        for s in &plan.scatterers {
            let peak = out.image.pixel_peak_depth(s.row, s.col, &cfg);
            if let Some(p) = peak {
                if (p - s.depth).abs() <= 2.0 * g.wire.step.norm() + 2.0 * cfg.bin_width() {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 10 >= plan.len() * 9,
            "only {hits}/{} layered pixels",
            plan.len()
        );
        let _ = mapper;
    }

    #[test]
    fn grain_boundary_splits_depths() {
        let g = geom();
        let plan = grain_boundary(&g, 4, 0.2, 0.8, 150.0).unwrap();
        assert_eq!(plan.len(), 64);
        // Left and right scatterers at one row have clearly different depths.
        let left = plan
            .scatterers
            .iter()
            .find(|s| s.row == 3 && s.col == 0)
            .unwrap();
        let right = plan
            .scatterers
            .iter()
            .find(|s| s.row == 3 && s.col == 7)
            .unwrap();
        assert!((right.depth - left.depth).abs() > 20.0);
        assert!(grain_boundary(&g, 0, 0.2, 0.8, 1.0).is_err());
        assert!(grain_boundary(&g, 8, 0.2, 0.8, 1.0).is_err());
    }

    #[test]
    fn grain_boundary_recovered_in_depth_map() {
        let g = geom();
        let plan = grain_boundary(&g, 4, 0.2, 0.8, 300.0).unwrap();
        let images = render_stack(&g, &plan, &RenderOptions::default()).unwrap();
        let view = ScanView::new(&images, 24, 8, 8).unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 600);
        let out = cpu::reconstruct_seq(&view, &g, &cfg).unwrap();
        let map = laue_core::post::depth_map(
            &out.image,
            &cfg,
            &laue_core::post::DepthMapOptions::default(),
        );
        // Compare each pixel's mapped depth against its truth.
        let mut ok = 0;
        for s in &plan.scatterers {
            if let Some(d) = map[s.row * 8 + s.col] {
                if (d - s.depth).abs() <= 25.0 {
                    ok += 1;
                }
            }
        }
        assert!(
            ok * 10 >= plan.len() * 9,
            "depth map recovered {ok}/{}",
            plan.len()
        );
    }

    #[test]
    fn indent_damage_decays_with_depth() {
        let g = geom();
        let plan = indent_damage(&g, 0.1, 0.2, 2.5, 400.0, 8).unwrap();
        assert!(!plan.is_empty());
        // Centre pixel: intensities must decrease monotonically with depth.
        let mut centre: Vec<_> = plan
            .scatterers
            .iter()
            .filter(|s| s.row == 3 && s.col == 3)
            .collect();
        centre.sort_by(|a, b| a.depth.total_cmp(&b.depth));
        assert!(centre.len() >= 3);
        for w in centre.windows(2) {
            assert!(w[1].intensity < w[0].intensity);
        }
        // Edge pixels get less than the centre (lateral Gaussian).
        let centre_peak = centre[0].intensity;
        if let Some(edge) = plan.scatterers.iter().find(|s| s.row == 0 && s.col == 0) {
            assert!(edge.intensity < centre_peak);
        }
        assert!(indent_damage(&g, 0.1, 0.0, 2.5, 400.0, 8).is_err());
        assert!(indent_damage(&g, 0.1, 0.2, 2.5, 400.0, 0).is_err());
    }
}
