//! Property-based tests for the geometric invariants the reconstruction
//! relies on. These are the "one geometric truth" guarantees shared by the
//! forward model and the reconstruction engines.

use laue_geometry::{Beam, DepthMapper, DetectorGeometry, Rotation, Vec3, WireEdge, WireGeometry};
use proptest::prelude::*;

fn finite_component() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

prop_compose! {
    fn arb_vec3()(x in finite_component(), y in finite_component(), z in finite_component()) -> Vec3 {
        Vec3::new(x, y, z)
    }
}

proptest! {
    #[test]
    fn rotation_preserves_lengths(r in arb_vec3(), v in arb_vec3()) {
        let rot = Rotation::from_rodrigues(r);
        let rv = rot.apply(v);
        prop_assert!((rv.norm() - v.norm()).abs() <= 1e-9 * (1.0 + v.norm()));
    }

    #[test]
    fn rotation_inverse_round_trips(r in arb_vec3(), v in arb_vec3()) {
        let rot = Rotation::from_rodrigues(r);
        let back = rot.inverse().apply(rot.apply(v));
        prop_assert!(back.approx_eq(v, 1e-8 * (1.0 + v.norm())));
    }

    #[test]
    fn cross_product_is_perpendicular(a in arb_vec3(), b in arb_vec3()) {
        let c = a.cross(b);
        let scale = 1.0 + a.norm() * b.norm();
        prop_assert!(c.dot(a).abs() <= 1e-9 * scale * (1.0 + a.norm()));
        prop_assert!(c.dot(b).abs() <= 1e-9 * scale * (1.0 + b.norm()));
    }

    #[test]
    fn beam_depth_point_round_trip(o in arb_vec3(), d in arb_vec3(), depth in -500.0..500.0f64) {
        prop_assume!(d.norm() > 1e-3);
        let beam = Beam::new(o, d).unwrap();
        let p = beam.point_at(depth);
        prop_assert!((beam.depth_of(p) - depth).abs() < 1e-8);
    }
}

/// Strategy producing a well-conditioned wire-scan configuration in the
/// conventional frame: beam +z, wire along x at positive height, pixel above.
#[derive(Debug, Clone)]
struct Scene {
    radius: f64,
    wire_height: f64,
    wire_z: f64,
    pixel_height: f64,
    pixel_z: f64,
    pixel_x: f64,
}

fn arb_scene() -> impl Strategy<Value = Scene> {
    (
        5.0..60.0f64,          // radius
        2_000.0..8_000.0f64,   // wire height
        -300.0..300.0f64,      // wire z
        12_000.0..30_000.0f64, // pixel height (well above wire)
        -2_000.0..2_000.0f64,  // pixel z
        -500.0..500.0f64,      // pixel x (along wire axis)
    )
        .prop_map(
            |(radius, wire_height, wire_z, pixel_height, pixel_z, pixel_x)| Scene {
                radius,
                wire_height,
                wire_z,
                pixel_height,
                pixel_z,
                pixel_x,
            },
        )
}

fn scene_mapper(s: &Scene) -> DepthMapper {
    DepthMapper::from_parts(
        Beam::along_z(),
        Vec3::X,
        s.radius,
        Vec3::new(0.0, 0.0, 10.0),
    )
    .unwrap()
}

proptest! {
    /// The occluded-depth interval computed from the two edge tangents must
    /// agree with the direct segment/cylinder occlusion test.
    #[test]
    fn edge_interval_matches_occlusion(s in arb_scene()) {
        let m = scene_mapper(&s);
        let pixel = Vec3::new(s.pixel_x, s.pixel_height, s.pixel_z);
        let wire = Vec3::new(0.0, s.wire_height, s.wire_z);
        if let Some((lo, hi)) = m.occluded_interval(pixel, wire) {
            prop_assume!(hi - lo > 1e-6);
            let mid = (lo + hi) / 2.0;
            prop_assert!(m.occludes(mid, pixel, wire));
            let margin = (hi - lo) * 1e-3 + 1e-6;
            prop_assert!(!m.occludes(lo - margin - 1.0, pixel, wire));
            prop_assert!(!m.occludes(hi + margin + 1.0, pixel, wire));
            // Interior sampling: every point strictly inside is occluded.
            for k in 1..8 {
                let d = lo + (hi - lo) * (k as f64) / 8.0;
                prop_assert!(m.occludes(d, pixel, wire), "depth {d} in ({lo}, {hi})");
            }
        }
    }

    /// Leading-edge depth grows monotonically as the wire steps forward.
    #[test]
    fn leading_depth_monotone_in_scan(s in arb_scene()) {
        let m = scene_mapper(&s);
        let pixel = Vec3::new(s.pixel_x, s.pixel_height, s.pixel_z);
        let mut last = f64::NEG_INFINITY;
        for i in 0..10 {
            let wire = Vec3::new(0.0, s.wire_height, s.wire_z + 10.0 * i as f64);
            let d = m.depth(pixel, wire, WireEdge::Leading).unwrap();
            prop_assert!(d > last);
            last = d;
        }
    }

    /// Depths are invariant under translation of pixel and wire along the
    /// wire axis (cylindrical symmetry).
    #[test]
    fn axis_translation_invariance(s in arb_scene(), dx in -5_000.0..5_000.0f64) {
        let m = scene_mapper(&s);
        let pixel = Vec3::new(s.pixel_x, s.pixel_height, s.pixel_z);
        let wire = Vec3::new(0.0, s.wire_height, s.wire_z);
        let d0 = m.depth(pixel, wire, WireEdge::Leading);
        let d1 = m.depth(pixel + Vec3::X * dx, wire + Vec3::X * dx, WireEdge::Leading);
        match (d0, d1) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs())),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "asymmetric results: {other:?}"),
        }
    }
}

proptest! {
    /// Detector pixel tables are affine: equal pitch between neighbours.
    #[test]
    fn detector_rows_are_affine(
        n_rows in 2usize..12,
        n_cols in 2usize..12,
        pitch in 10.0..400.0f64,
        rod in arb_vec3(),
    ) {
        let rot = Rotation::from_rodrigues(rod * 0.001);
        let det = DetectorGeometry::new(n_rows, n_cols, pitch, pitch, rot, Vec3::new(0.0, 5e4, 0.0)).unwrap();
        let t = det.pixel_table();
        let step_col = t[1] - t[0];
        let step_row = t[n_cols] - t[0];
        prop_assert!((step_col.norm() - pitch).abs() < 1e-6);
        prop_assert!((step_row.norm() - pitch).abs() < 1e-6);
        for r in 0..n_rows {
            for c in 0..n_cols {
                let expect = t[0] + step_row * r as f64 + step_col * c as f64;
                prop_assert!(t[r * n_cols + c].approx_eq(expect, 1e-6));
            }
        }
    }

    /// Wire centres advance linearly and in-bounds lookups never fail.
    #[test]
    fn wire_centers_linear(n_steps in 2usize..40, step_z in 0.5..50.0f64) {
        let w = WireGeometry::along_x(
            25.0,
            Vec3::new(0.0, 5_000.0, -100.0),
            Vec3::new(0.0, 0.0, step_z),
            n_steps,
        ).unwrap();
        for i in 0..n_steps {
            let c = w.center(i).unwrap();
            prop_assert!(c.approx_eq(w.origin + w.step * i as f64, 1e-9));
        }
        prop_assert!(w.center(n_steps).is_err());
    }
}
