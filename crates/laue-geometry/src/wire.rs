//! The absorbing wire and its scan trajectory.
//!
//! A platinum wire of radius ~25 µm is stepped across the space between the
//! sample and the detector. At scan step `i` its axis passes through
//! `origin + i * step`, parallel to `axis`. The *edges* of the wire — the
//! tangent lines as seen from a detector pixel — define which depths along
//! the incident beam are occluded.

use crate::error::GeometryError;
use crate::vec3::Vec3;

/// The wire: a cylinder of radius `radius` with axis direction `axis`,
/// stepped along `step` between consecutive images.
#[derive(Debug, Clone, PartialEq)]
pub struct WireGeometry {
    /// Unit direction of the wire axis.
    pub axis: Vec3,
    /// Wire radius, µm.
    pub radius: f64,
    /// Axis point at scan step 0, µm.
    pub origin: Vec3,
    /// Displacement of the axis per scan step, µm.
    pub step: Vec3,
    /// Number of scan steps (= number of images in the stack).
    pub n_steps: usize,
}

impl WireGeometry {
    /// Build and validate a wire geometry.
    pub fn new(
        axis: Vec3,
        radius: f64,
        origin: Vec3,
        step: Vec3,
        n_steps: usize,
    ) -> Result<Self, GeometryError> {
        let axis = axis
            .normalized()
            .ok_or(GeometryError::ZeroVector("wire axis"))?;
        if radius <= 0.0 || !radius.is_finite() {
            return Err(GeometryError::InvalidParameter {
                name: "radius",
                value: radius,
                reason: "wire radius must be positive and finite",
            });
        }
        if step.normalized().is_none() {
            return Err(GeometryError::ZeroVector("wire step"));
        }
        if step.reject_from_unit(axis).normalized().is_none() {
            return Err(GeometryError::StepParallelToWireAxis);
        }
        if n_steps < 2 {
            return Err(GeometryError::InvalidParameter {
                name: "n_steps",
                value: n_steps as f64,
                reason: "a wire scan needs at least two steps to form one differential",
            });
        }
        Ok(WireGeometry {
            axis,
            radius,
            origin,
            step,
            n_steps,
        })
    }

    /// Conventional scan for the overhead-detector frame: wire along `x̂`,
    /// starting at `origin`, stepping by `step` per image.
    pub fn along_x(
        radius: f64,
        origin: Vec3,
        step: Vec3,
        n_steps: usize,
    ) -> Result<Self, GeometryError> {
        WireGeometry::new(Vec3::X, radius, origin, step, n_steps)
    }

    /// Wire-axis point at scan step `i` (bounds-checked).
    pub fn center(&self, step: usize) -> Result<Vec3, GeometryError> {
        if step >= self.n_steps {
            return Err(GeometryError::StepOutOfRange {
                step,
                n_steps: self.n_steps,
            });
        }
        Ok(self.center_unchecked(step as f64))
    }

    /// Wire-axis point at (possibly fractional) scan coordinate `i`.
    #[inline]
    pub fn center_unchecked(&self, step: f64) -> Vec3 {
        self.origin + self.step * step
    }

    /// All wire centres for the scan, in step order.
    pub fn centers(&self) -> Vec<Vec3> {
        (0..self.n_steps)
            .map(|i| self.center_unchecked(i as f64))
            .collect()
    }

    /// Total travel of the wire over the scan, µm.
    pub fn travel(&self) -> f64 {
        self.step.norm() * (self.n_steps.saturating_sub(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_wire() -> WireGeometry {
        WireGeometry::along_x(
            25.0,
            Vec3::new(0.0, 5_000.0, -300.0),
            Vec3::new(0.0, 0.0, 10.0),
            11,
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let o = Vec3::new(0.0, 5_000.0, 0.0);
        let s = Vec3::new(0.0, 0.0, 10.0);
        assert_eq!(
            WireGeometry::new(Vec3::ZERO, 25.0, o, s, 5).unwrap_err(),
            GeometryError::ZeroVector("wire axis")
        );
        assert!(matches!(
            WireGeometry::along_x(0.0, o, s, 5).unwrap_err(),
            GeometryError::InvalidParameter { name: "radius", .. }
        ));
        assert!(matches!(
            WireGeometry::along_x(-3.0, o, s, 5).unwrap_err(),
            GeometryError::InvalidParameter { name: "radius", .. }
        ));
        assert_eq!(
            WireGeometry::along_x(25.0, o, Vec3::ZERO, 5).unwrap_err(),
            GeometryError::ZeroVector("wire step")
        );
        // Step along the axis itself never sweeps the wire across rays.
        assert_eq!(
            WireGeometry::along_x(25.0, o, Vec3::new(4.0, 0.0, 0.0), 5).unwrap_err(),
            GeometryError::StepParallelToWireAxis
        );
        assert!(matches!(
            WireGeometry::along_x(25.0, o, s, 1).unwrap_err(),
            GeometryError::InvalidParameter {
                name: "n_steps",
                ..
            }
        ));
    }

    #[test]
    fn axis_is_normalized() {
        let w = WireGeometry::new(
            Vec3::new(2.0, 0.0, 0.0),
            25.0,
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            3,
        )
        .unwrap();
        assert!(w.axis.approx_eq(Vec3::X, 1e-15));
    }

    #[test]
    fn centers_advance_by_step() {
        let w = demo_wire();
        let centers = w.centers();
        assert_eq!(centers.len(), 11);
        assert_eq!(centers[0], w.origin);
        for i in 1..centers.len() {
            assert!((centers[i] - centers[i - 1]).approx_eq(w.step, 1e-12));
        }
        assert!(matches!(
            w.center(11),
            Err(GeometryError::StepOutOfRange { .. })
        ));
        assert_eq!(w.center(10).unwrap(), centers[10]);
    }

    #[test]
    fn travel_is_step_times_intervals() {
        let w = demo_wire();
        assert!((w.travel() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_center_interpolates() {
        let w = demo_wire();
        let mid = w.center_unchecked(0.5);
        assert!(mid.approx_eq((w.center(0).unwrap() + w.center(1).unwrap()) * 0.5, 1e-12));
    }
}
