//! 3×3 rotation matrices with Rodrigues axis-angle construction.
//!
//! Detector calibrations at 34-ID are stored as a Rodrigues vector `R` whose
//! direction is the rotation axis and whose magnitude is the rotation angle
//! in radians; [`Rotation::from_rodrigues`] mirrors that convention.

use crate::vec3::Vec3;

/// A proper rotation, stored as a row-major 3×3 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    /// Rows of the matrix; `apply(v) = (r0·v, r1·v, r2·v)`.
    pub rows: [Vec3; 3],
}

impl Default for Rotation {
    fn default() -> Self {
        Rotation::IDENTITY
    }
}

impl Rotation {
    /// The identity rotation.
    pub const IDENTITY: Rotation = Rotation {
        rows: [Vec3::X, Vec3::Y, Vec3::Z],
    };

    /// Build from a Rodrigues vector: axis = `r / |r|`, angle = `|r|` radians.
    /// The zero vector yields the identity.
    pub fn from_rodrigues(r: Vec3) -> Rotation {
        let theta = r.norm();
        match r.normalized() {
            None => Rotation::IDENTITY,
            Some(axis) => Rotation::from_axis_angle(axis, theta),
        }
    }

    /// Build from a unit `axis` and `angle` in radians (right-hand rule).
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Rotation {
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (axis.x, axis.y, axis.z);
        Rotation {
            rows: [
                Vec3::new(t * x * x + c, t * x * y - s * z, t * x * z + s * y),
                Vec3::new(t * x * y + s * z, t * y * y + c, t * y * z - s * x),
                Vec3::new(t * x * z - s * y, t * y * z + s * x, t * z * z + c),
            ],
        }
    }

    /// Build from intrinsic Z-Y-X Euler angles (yaw, pitch, roll), radians —
    /// the convention beamline motor stacks report.
    pub fn from_euler_zyx(yaw: f64, pitch: f64, roll: f64) -> Rotation {
        let rz = Rotation::from_axis_angle(Vec3::Z, yaw);
        let ry = Rotation::from_axis_angle(Vec3::Y, pitch);
        let rx = Rotation::from_axis_angle(Vec3::X, roll);
        // Intrinsic Z-Y-X: apply roll first in the body frame ⇒ R = Rz·Ry·Rx.
        rx.then(&ry).then(&rz)
    }

    /// The minimal rotation taking unit-ish vector `from` onto `to`
    /// (both are normalised internally). Returns `None` when either vector
    /// is zero or when they are exactly opposite (the axis is ambiguous —
    /// pick one explicitly with [`from_axis_angle`](Self::from_axis_angle)).
    pub fn between(from: Vec3, to: Vec3) -> Option<Rotation> {
        let f = from.normalized()?;
        let t = to.normalized()?;
        let c = f.dot(t);
        if c > 1.0 - 1e-12 {
            return Some(Rotation::IDENTITY);
        }
        if c < -1.0 + 1e-9 {
            return None; // antiparallel: ambiguous axis
        }
        let axis = f.cross(t).normalized()?;
        Some(Rotation::from_axis_angle(axis, c.clamp(-1.0, 1.0).acos()))
    }

    /// Rotate a vector.
    #[inline]
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }

    /// The inverse rotation (matrix transpose).
    pub fn inverse(&self) -> Rotation {
        let [a, b, c] = self.rows;
        Rotation {
            rows: [
                Vec3::new(a.x, b.x, c.x),
                Vec3::new(a.y, b.y, c.y),
                Vec3::new(a.z, b.z, c.z),
            ],
        }
    }

    /// Compose: `self.then(&g)` applies `self` first, then `g`.
    pub fn then(&self, g: &Rotation) -> Rotation {
        // result = g * self
        let cols = self.inverse(); // rows of inverse are columns of self
        Rotation {
            rows: [
                Vec3::new(
                    g.rows[0].dot(cols.rows[0]),
                    g.rows[0].dot(cols.rows[1]),
                    g.rows[0].dot(cols.rows[2]),
                ),
                Vec3::new(
                    g.rows[1].dot(cols.rows[0]),
                    g.rows[1].dot(cols.rows[1]),
                    g.rows[1].dot(cols.rows[2]),
                ),
                Vec3::new(
                    g.rows[2].dot(cols.rows[0]),
                    g.rows[2].dot(cols.rows[1]),
                    g.rows[2].dot(cols.rows[2]),
                ),
            ],
        }
    }

    /// Maximum absolute deviation of `RᵀR` from the identity — a measure of
    /// numerical orthonormality used by validation code and tests.
    pub fn orthonormality_error(&self) -> f64 {
        let rt = self.inverse();
        let prod = rt.then(self); // self * rt ... both orders work for the error
        let mut err: f64 = 0.0;
        let id = Rotation::IDENTITY;
        for i in 0..3 {
            let d = prod.rows[i] - id.rows[i];
            err = err.max(d.x.abs()).max(d.y.abs()).max(d.z.abs());
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_from_zero_rodrigues() {
        let r = Rotation::from_rodrigues(Vec3::ZERO);
        assert_eq!(r, Rotation::IDENTITY);
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert_eq!(r.apply(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let r = Rotation::from_rodrigues(Vec3::new(0.0, 0.0, FRAC_PI_2));
        assert!(r.apply(Vec3::X).approx_eq(Vec3::Y, 1e-12));
        assert!(r.apply(Vec3::Y).approx_eq(-Vec3::X, 1e-12));
        assert!(r.apply(Vec3::Z).approx_eq(Vec3::Z, 1e-12));
    }

    #[test]
    fn half_turn_about_x() {
        let r = Rotation::from_axis_angle(Vec3::X, PI);
        assert!(r.apply(Vec3::Y).approx_eq(-Vec3::Y, 1e-12));
        assert!(r.apply(Vec3::Z).approx_eq(-Vec3::Z, 1e-12));
    }

    #[test]
    fn inverse_round_trips() {
        let r = Rotation::from_rodrigues(Vec3::new(0.3, -1.2, 0.7));
        let v = Vec3::new(4.0, 5.0, -6.0);
        assert!(r.inverse().apply(r.apply(v)).approx_eq(v, 1e-12));
    }

    #[test]
    fn rotation_preserves_norm_and_dot() {
        let r = Rotation::from_rodrigues(Vec3::new(1.0, 2.0, 3.0));
        let a = Vec3::new(0.1, 0.2, -0.3);
        let b = Vec3::new(-5.0, 4.0, 3.0);
        assert!((r.apply(a).norm() - a.norm()).abs() < 1e-12);
        assert!((r.apply(a).dot(r.apply(b)) - a.dot(b)).abs() < 1e-10);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let r1 = Rotation::from_rodrigues(Vec3::new(0.2, 0.0, 0.9));
        let r2 = Rotation::from_rodrigues(Vec3::new(-0.5, 0.4, 0.0));
        let v = Vec3::new(1.0, 2.0, 3.0);
        let composed = r1.then(&r2);
        assert!(composed.apply(v).approx_eq(r2.apply(r1.apply(v)), 1e-12));
    }

    #[test]
    fn orthonormality_error_small() {
        let r = Rotation::from_rodrigues(Vec3::new(0.83, -2.1, 1.4));
        assert!(r.orthonormality_error() < 1e-12);
    }

    #[test]
    fn euler_zyx_matches_sequential_axis_rotations() {
        let (yaw, pitch, roll) = (0.3, -0.8, 1.2);
        let r = Rotation::from_euler_zyx(yaw, pitch, roll);
        let manual = Rotation::from_axis_angle(Vec3::X, roll)
            .then(&Rotation::from_axis_angle(Vec3::Y, pitch))
            .then(&Rotation::from_axis_angle(Vec3::Z, yaw));
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert!(r.apply(v).approx_eq(manual.apply(v), 1e-12));
        // Pure single-angle cases reduce to axis rotations.
        let r = Rotation::from_euler_zyx(FRAC_PI_2, 0.0, 0.0);
        assert!(r.apply(Vec3::X).approx_eq(Vec3::Y, 1e-12));
        let r = Rotation::from_euler_zyx(0.0, 0.0, FRAC_PI_2);
        assert!(r.apply(Vec3::Y).approx_eq(Vec3::Z, 1e-12));
        assert!(r.orthonormality_error() < 1e-12);
    }

    #[test]
    fn between_aligns_vectors() {
        let cases = [
            (Vec3::X, Vec3::Y),
            (Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.5, 0.25, 2.0)),
            (Vec3::Z, Vec3::Z),
        ];
        for (from, to) in cases {
            let r = Rotation::between(from, to).unwrap();
            let aligned = r.apply(from.normalized().unwrap());
            assert!(
                aligned.approx_eq(to.normalized().unwrap(), 1e-10),
                "{from:?} → {to:?} gave {aligned:?}"
            );
            assert!(r.orthonormality_error() < 1e-10);
        }
        // Degenerate cases.
        assert!(Rotation::between(Vec3::ZERO, Vec3::X).is_none());
        assert!(
            Rotation::between(Vec3::X, -Vec3::X).is_none(),
            "antiparallel ambiguous"
        );
    }

    #[test]
    fn full_turn_is_identity() {
        let r = Rotation::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), 2.0 * PI);
        let v = Vec3::new(7.0, -3.0, 2.0);
        assert!(r.apply(v).approx_eq(v, 1e-10));
    }
}
