//! Minimal 3-component double-precision vector used throughout the beamline
//! geometry. Deliberately small and `Copy`; no external linear-algebra
//! dependency is needed for this workload.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-D vector (or point) in laboratory coordinates, in micrometres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along `x`.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along `y`.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along `z`.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the same direction, or `None` when the norm is not
    /// usefully above zero (guards downstream divisions).
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 1e-300 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component of `self` perpendicular to the **unit** vector `axis`.
    #[inline]
    pub fn reject_from_unit(self, axis: Vec3) -> Vec3 {
        self - axis * self.dot(axis)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Component-wise approximate equality with absolute tolerance `tol`.
    #[inline]
    pub fn approx_eq(self, o: Vec3, tol: f64) -> bool {
        (self.x - o.x).abs() <= tol && (self.y - o.y).abs() <= tol && (self.z - o.z).abs() <= tol
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b, Vec3::new(-3.0, 7.0, 3.5));
        assert_eq!(a - b, Vec3::new(5.0, -3.0, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // anti-commutativity
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert!(a.cross(b).approx_eq(-(b.cross(a)), 1e-12));
        // cross is perpendicular to both operands
        assert!(a.cross(b).dot(a).abs() < 1e-12);
        assert!(a.cross(b).dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm_sq(), 169.0);
        assert_eq!(v.norm(), 13.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn rejection_is_perpendicular() {
        let axis = Vec3::new(0.0, 0.0, 1.0);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let r = v.reject_from_unit(axis);
        assert!(r.dot(axis).abs() < 1e-15);
        assert!(r.approx_eq(Vec3::new(1.0, 2.0, 0.0), 1e-15));
    }

    #[test]
    fn finite_checks() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn distance_symmetry() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(4.0, 5.0, 13.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
        assert_eq!(a.distance(b), 13.0);
    }
}
