//! The core triangulation of wire-scan depth reconstruction:
//! `pixel_xyz_to_depth` — given a detector pixel and a wire edge, find the
//! depth along the incident beam from which a grazing ray must have
//! originated.
//!
//! # Geometry
//!
//! Everything happens in the plane perpendicular to the wire axis, because
//! the wire is (locally) a cylinder: a ray grazes the wire iff its projection
//! into that plane is tangent to the wire's circular cross-section.
//!
//! [`DepthMapper`] builds an orthonormal basis `(u, v)` of that plane with
//! `u` along the projection of the beam. In plane coordinates (relative to
//! the beam origin) the beam is the half-axis `{(s·e, 0)}`, a pixel is a
//! point `p`, and the wire at a given scan step is a circle `(c, R)`.
//! The tangent lines from `p` to the circle touch it at two points; the
//! *leading* edge is the tangent point on the side the wire travels toward,
//! the *trailing* edge the opposite one. Intersecting the grazing ray
//! `p → T` with the beam axis yields the depth.
//!
//! The same projection gives an exact occlusion test ([`DepthMapper::occludes`]):
//! the segment from a source point on the beam to the pixel passes within the
//! wire radius of the wire axis iff its 2-D projection passes within `R` of
//! the circle centre. The forward model in `laue-wire` uses this, so the
//! synthetic data and the reconstruction share one geometric truth.

use crate::beam::Beam;
use crate::error::GeometryError;
use crate::vec3::Vec3;
use crate::wire::WireGeometry;

/// Which side of the wire a grazing ray touches.
///
/// `Leading` is the edge on the side the wire is moving toward (the face
/// that occludes *new* depths as the scan advances); `Trailing` is the face
/// that re-exposes depths. These correspond to the "front edge" / "back
/// edge" cases of the original `setTwo` kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireEdge {
    /// Edge on the side the wire steps toward.
    Leading,
    /// Edge on the side the wire steps away from.
    Trailing,
}

impl WireEdge {
    /// The opposite edge.
    pub fn opposite(self) -> WireEdge {
        match self {
            WireEdge::Leading => WireEdge::Trailing,
            WireEdge::Trailing => WireEdge::Leading,
        }
    }
}

/// 2-D point/vector in the triangulation plane.
#[derive(Debug, Clone, Copy, PartialEq)]
struct P2 {
    u: f64,
    v: f64,
}

impl P2 {
    #[inline]
    fn dot(self, o: P2) -> f64 {
        self.u * o.u + self.v * o.v
    }
    #[inline]
    fn norm_sq(self) -> f64 {
        self.dot(self)
    }
    #[inline]
    fn perp(self) -> P2 {
        P2 {
            u: -self.v,
            v: self.u,
        }
    }
    #[inline]
    fn sub(self, o: P2) -> P2 {
        P2 {
            u: self.u - o.u,
            v: self.v - o.v,
        }
    }
    #[inline]
    fn add(self, o: P2) -> P2 {
        P2 {
            u: self.u + o.u,
            v: self.v + o.v,
        }
    }
    #[inline]
    fn scale(self, s: f64) -> P2 {
        P2 {
            u: self.u * s,
            v: self.v * s,
        }
    }
}

/// Precomputed frame for triangulating pixels against a wire scan.
///
/// Building a `DepthMapper` validates the beam/wire configuration once;
/// [`depth`](DepthMapper::depth) is then cheap enough for the hot
/// table-building loops in the reconstruction engines.
#[derive(Debug, Clone)]
pub struct DepthMapper {
    beam: Beam,
    wire_axis: Vec3,
    radius: f64,
    /// Basis of the plane ⊥ wire axis; `u` along the beam's projection.
    u: Vec3,
    v: Vec3,
    /// Length of the beam direction's projection into the plane (≤ 1).
    e: f64,
    /// Unit 2-D projection of the wire step direction.
    step2: P2,
}

impl DepthMapper {
    /// Build a mapper for a `(beam, wire)` pair.
    pub fn new(beam: Beam, wire: &WireGeometry) -> Result<DepthMapper, GeometryError> {
        Self::from_parts(beam, wire.axis, wire.radius, wire.step)
    }

    /// Build from raw parts (axis need not be pre-normalised).
    pub fn from_parts(
        beam: Beam,
        wire_axis: Vec3,
        radius: f64,
        wire_step: Vec3,
    ) -> Result<DepthMapper, GeometryError> {
        let wire_axis = wire_axis
            .normalized()
            .ok_or(GeometryError::ZeroVector("wire axis"))?;
        if radius <= 0.0 || !radius.is_finite() {
            return Err(GeometryError::InvalidParameter {
                name: "radius",
                value: radius,
                reason: "wire radius must be positive and finite",
            });
        }
        let d_perp = beam.direction.reject_from_unit(wire_axis);
        let u = d_perp
            .normalized()
            .ok_or(GeometryError::BeamParallelToWireAxis)?;
        let v = wire_axis.cross(u);
        let e = beam.direction.dot(u);
        let step_perp = wire_step.reject_from_unit(wire_axis);
        let sp = P2 {
            u: step_perp.dot(u),
            v: step_perp.dot(v),
        };
        let n = sp.norm_sq().sqrt();
        if n <= 1e-300 {
            return Err(GeometryError::StepParallelToWireAxis);
        }
        Ok(DepthMapper {
            beam,
            wire_axis,
            radius,
            u,
            v,
            e,
            step2: sp.scale(1.0 / n),
        })
    }

    /// Project a lab point into plane coordinates relative to the beam origin.
    #[inline]
    fn project(&self, p: Vec3) -> P2 {
        let d = p - self.beam.origin;
        P2 {
            u: d.dot(self.u),
            v: d.dot(self.v),
        }
    }

    /// Wire radius used by this mapper, µm.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The beam this mapper triangulates against.
    pub fn beam(&self) -> &Beam {
        &self.beam
    }

    /// Unit direction of the wire axis this mapper projects along.
    pub fn wire_axis(&self) -> Vec3 {
        self.wire_axis
    }

    /// Tangent points from `p` to circle `(c, R)`, as 2-D points.
    /// Errors when `p` is inside (or on) the circle.
    fn tangent_points(&self, p: P2, c: P2) -> Result<(P2, P2), GeometryError> {
        let m = p.sub(c);
        let l2 = m.norm_sq();
        let r2 = self.radius * self.radius;
        if l2 <= r2 {
            return Err(GeometryError::PixelInsideWire {
                distance: l2.sqrt(),
                radius: self.radius,
            });
        }
        let base = c.add(m.scale(r2 / l2));
        let h = self.radius * (l2 - r2).sqrt() / l2;
        let off = m.perp().scale(h);
        Ok((base.add(off), base.sub(off)))
    }

    /// Depth along the beam of the grazing ray from `pixel` past the given
    /// `edge` of the wire whose axis passes through `wire_center`.
    ///
    /// ```
    /// use laue_geometry::{Beam, DepthMapper, Vec3, WireEdge};
    ///
    /// // Beam along +z, wire along x half-way up to an overhead pixel:
    /// // by similar triangles the pinhole depth of wire z is ≈ 2·z.
    /// let m = DepthMapper::from_parts(
    ///     Beam::along_z(), Vec3::X, 1e-6, Vec3::new(0.0, 0.0, 1.0),
    /// ).unwrap();
    /// let pixel = Vec3::new(0.0, 10_000.0, 0.0);
    /// let wire = Vec3::new(0.0, 5_000.0, 30.0);
    /// let d = m.depth(pixel, wire, WireEdge::Leading).unwrap();
    /// assert!((d - 60.0).abs() < 0.01);
    /// ```
    pub fn depth(
        &self,
        pixel: Vec3,
        wire_center: Vec3,
        edge: WireEdge,
    ) -> Result<f64, GeometryError> {
        let p = self.project(pixel);
        let c = self.project(wire_center);
        let (t_a, t_b) = self.tangent_points(p, c)?;
        // Score each tangent point by its offset from the centre along the
        // step direction; leading = the one the wire is moving toward.
        let sa = t_a.sub(c).dot(self.step2);
        let sb = t_b.sub(c).dot(self.step2);
        let t = match edge {
            WireEdge::Leading => {
                if sa >= sb {
                    t_a
                } else {
                    t_b
                }
            }
            WireEdge::Trailing => {
                if sa < sb {
                    t_a
                } else {
                    t_b
                }
            }
        };
        self.ray_to_depth(p, t)
    }

    /// Depths for both edges: `(trailing, leading)`.
    pub fn depth_pair(&self, pixel: Vec3, wire_center: Vec3) -> Result<(f64, f64), GeometryError> {
        Ok((
            self.depth(pixel, wire_center, WireEdge::Trailing)?,
            self.depth(pixel, wire_center, WireEdge::Leading)?,
        ))
    }

    /// Intersect the line `p → t` with the beam axis `{(s·e, 0)}` and return
    /// the depth `s`.
    fn ray_to_depth(&self, p: P2, t: P2) -> Result<f64, GeometryError> {
        let w = t.sub(p);
        // Solve p + k·w = (s·e, 0). Second component: p.v + k·w.v = 0.
        let scale = w.norm_sq().sqrt().max(p.v.abs()).max(1.0);
        if w.v.abs() <= 1e-14 * scale {
            return Err(GeometryError::RayParallelToBeam);
        }
        let k = -p.v / w.v;
        let s_e = p.u + k * w.u;
        Ok(s_e / self.e)
    }

    /// Exact occlusion test shared with the forward model: does the straight
    /// segment from the beam point at `depth` to `pixel` pass through the
    /// wire positioned at `wire_center`?
    pub fn occludes(&self, depth: f64, pixel: Vec3, wire_center: Vec3) -> bool {
        let s = P2 {
            u: depth * self.e,
            v: 0.0,
        };
        let p = self.project(pixel);
        let c = self.project(wire_center);
        // Distance from c to segment s→p.
        let d = p.sub(s);
        let len2 = d.norm_sq();
        let t = if len2 <= 1e-300 {
            0.0
        } else {
            (c.sub(s).dot(d) / len2).clamp(0.0, 1.0)
        };
        let closest = s.add(d.scale(t));
        closest.sub(c).norm_sq() <= self.radius * self.radius
    }

    /// The interval of depths occluded by the wire at `wire_center` for a
    /// given pixel, as `(low, high)`; `None` when no tangent exists or the
    /// rays are degenerate.
    pub fn occluded_interval(&self, pixel: Vec3, wire_center: Vec3) -> Option<(f64, f64)> {
        let (a, b) = self.depth_pair(pixel, wire_center).ok()?;
        Some((a.min(b), a.max(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Conventional frame: beam +z through origin, wire along x at height h,
    /// stepping downstream (+z), pixel overhead at height big-H.
    fn mapper(radius: f64) -> DepthMapper {
        DepthMapper::from_parts(Beam::along_z(), Vec3::X, radius, Vec3::new(0.0, 0.0, 10.0))
            .unwrap()
    }

    #[test]
    fn construction_validates() {
        let b = Beam::along_z();
        assert!(matches!(
            DepthMapper::from_parts(b, Vec3::ZERO, 25.0, Vec3::Z),
            Err(GeometryError::ZeroVector(_))
        ));
        assert!(matches!(
            DepthMapper::from_parts(b, Vec3::Z, 25.0, Vec3::X),
            Err(GeometryError::BeamParallelToWireAxis)
        ));
        assert!(matches!(
            DepthMapper::from_parts(b, Vec3::X, 25.0, Vec3::X * 3.0),
            Err(GeometryError::StepParallelToWireAxis)
        ));
        assert!(matches!(
            DepthMapper::from_parts(b, Vec3::X, 0.0, Vec3::Z),
            Err(GeometryError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn pinhole_limit_matches_similar_triangles() {
        // With a tiny wire, both edges converge to the line through the wire
        // centre: pixel (y=2h, z=0), wire (y=h, z=zc) → depth 2·zc.
        let m = mapper(1e-6);
        let h = 5_000.0;
        let pixel = Vec3::new(0.0, 2.0 * h, 0.0);
        for zc in [-30.0, 0.0, 12.5, 100.0] {
            let wire = Vec3::new(0.0, h, zc);
            let (lo, hi) = m.depth_pair(pixel, wire).unwrap();
            assert!(
                (lo - 2.0 * zc).abs() < 1e-3,
                "trailing {lo} vs {}",
                2.0 * zc
            );
            assert!((hi - 2.0 * zc).abs() < 1e-3, "leading {hi} vs {}", 2.0 * zc);
        }
    }

    #[test]
    fn leading_edge_is_downstream_of_trailing() {
        let m = mapper(25.0);
        let pixel = Vec3::new(0.0, 10_000.0, 0.0);
        let wire = Vec3::new(0.0, 5_000.0, 40.0);
        let lead = m.depth(pixel, wire, WireEdge::Leading).unwrap();
        let trail = m.depth(pixel, wire, WireEdge::Trailing).unwrap();
        assert!(
            lead > trail,
            "wire steps +z so leading edge occludes larger depths: lead={lead} trail={trail}"
        );
    }

    #[test]
    fn edge_depths_bracket_center_ray() {
        let m = mapper(25.0);
        let pixel = Vec3::new(0.0, 10_000.0, -200.0);
        let wire = Vec3::new(0.0, 4_000.0, 55.0);
        let center_depth = {
            // tiny-wire mapper for the central ray
            let m0 = mapper(1e-9);
            m0.depth(pixel, wire, WireEdge::Leading).unwrap()
        };
        let (lo, hi) = m.occluded_interval(pixel, wire).unwrap();
        assert!(
            lo < center_depth && center_depth < hi,
            "{lo} < {center_depth} < {hi}"
        );
    }

    #[test]
    fn depth_is_monotone_in_wire_position() {
        let m = mapper(25.0);
        let pixel = Vec3::new(0.0, 10_000.0, -100.0);
        let mut last = f64::NEG_INFINITY;
        for i in 0..20 {
            let wire = Vec3::new(0.0, 5_000.0, -100.0 + 10.0 * i as f64);
            let d = m.depth(pixel, wire, WireEdge::Leading).unwrap();
            assert!(
                d > last,
                "leading-edge depth must increase with wire travel"
            );
            last = d;
        }
    }

    #[test]
    fn pixel_inside_wire_is_an_error() {
        let m = mapper(25.0);
        let wire = Vec3::new(0.0, 5_000.0, 0.0);
        let pixel = Vec3::new(0.0, 5_010.0, 3.0); // 10.4 µm from the axis
        assert!(matches!(
            m.depth(pixel, wire, WireEdge::Leading),
            Err(GeometryError::PixelInsideWire { .. })
        ));
    }

    #[test]
    fn ray_parallel_to_beam_detected() {
        // Pixel directly downstream of the wire at the same height: the
        // leading tangent ray can run parallel to the beam when pixel sits on
        // the tangent line. Construct explicitly: wire at (y=h), pixel at
        // (y = h + R, far z) — the top tangent is horizontal (∥ beam).
        let m = mapper(25.0);
        let h = 5_000.0;
        let wire = Vec3::new(0.0, h, 0.0);
        let pixel = Vec3::new(0.0, h + 25.0, 80_000.0);
        // One edge is (nearly) parallel; make sure we get the error rather
        // than a garbage depth of ~1e18.
        let res_lead = m.depth(pixel, wire, WireEdge::Leading);
        let res_trail = m.depth(pixel, wire, WireEdge::Trailing);
        assert!(
            res_lead.is_err() || res_trail.is_err(),
            "one tangent should be parallel: {res_lead:?} {res_trail:?}"
        );
    }

    #[test]
    fn occlusion_matches_edge_interval() {
        let m = mapper(25.0);
        let pixel = Vec3::new(0.0, 10_000.0, -150.0);
        let wire = Vec3::new(0.0, 5_000.0, 30.0);
        let (lo, hi) = m.occluded_interval(pixel, wire).unwrap();
        let eps = 1e-6 * (hi - lo);
        // Just inside the interval: occluded. Just outside: visible.
        assert!(m.occludes(lo + eps, pixel, wire));
        assert!(m.occludes((lo + hi) / 2.0, pixel, wire));
        assert!(m.occludes(hi - eps, pixel, wire));
        assert!(!m.occludes(lo - 1.0, pixel, wire));
        assert!(!m.occludes(hi + 1.0, pixel, wire));
    }

    #[test]
    fn occlusion_interval_widens_with_radius() {
        let pixel = Vec3::new(0.0, 10_000.0, -150.0);
        let wire = Vec3::new(0.0, 5_000.0, 30.0);
        let (lo_s, hi_s) = mapper(10.0).occluded_interval(pixel, wire).unwrap();
        let (lo_l, hi_l) = mapper(50.0).occluded_interval(pixel, wire).unwrap();
        assert!(lo_l < lo_s && hi_l > hi_s);
    }

    #[test]
    fn wire_axis_offset_does_not_matter() {
        // Moving the wire centre along its own axis must not change depths.
        let m = mapper(25.0);
        let pixel = Vec3::new(37.0, 10_000.0, -150.0);
        let w0 = Vec3::new(0.0, 5_000.0, 30.0);
        let w1 = w0 + Vec3::X * 12_345.0;
        let d0 = m.depth(pixel, w0, WireEdge::Leading).unwrap();
        let d1 = m.depth(pixel, w1, WireEdge::Leading).unwrap();
        assert!((d0 - d1).abs() < 1e-9);
    }

    #[test]
    fn off_plane_pixel_uses_projection() {
        // Pixels displaced along the wire axis see the same cross-section.
        let m = mapper(25.0);
        let w = Vec3::new(0.0, 5_000.0, 30.0);
        let d0 = m
            .depth(Vec3::new(0.0, 10_000.0, -150.0), w, WireEdge::Leading)
            .unwrap();
        let d1 = m
            .depth(Vec3::new(500.0, 10_000.0, -150.0), w, WireEdge::Leading)
            .unwrap();
        assert!((d0 - d1).abs() < 1e-9);
    }

    #[test]
    fn edge_opposite_round_trips() {
        assert_eq!(WireEdge::Leading.opposite(), WireEdge::Trailing);
        assert_eq!(WireEdge::Trailing.opposite(), WireEdge::Leading);
        assert_eq!(WireEdge::Leading.opposite().opposite(), WireEdge::Leading);
    }

    #[test]
    fn tilted_beam_still_consistent() {
        // Beam tilted 5° in the y–z plane; the tangent construction must
        // still satisfy the occlusion bracket property.
        let beam = Beam::new(Vec3::ZERO, Vec3::new(0.0, 0.087, 0.996)).unwrap();
        let m = DepthMapper::from_parts(beam, Vec3::X, 25.0, Vec3::new(0.0, 0.0, 10.0)).unwrap();
        let pixel = Vec3::new(0.0, 10_000.0, 100.0);
        let wire = Vec3::new(0.0, 5_000.0, 60.0);
        let (lo, hi) = m.occluded_interval(pixel, wire).unwrap();
        assert!(lo < hi);
        assert!(m.occludes((lo + hi) / 2.0, pixel, wire));
        assert!(!m.occludes(hi + 5.0, pixel, wire));
    }
}
