//! Beamline geometry for wire-scan (differential-aperture) Laue depth
//! reconstruction.
//!
//! This crate provides the geometric substrate used by the depth
//! reconstruction algorithm of Yue, Schwarz & Tischler (CLUSTER 2015):
//!
//! * [`Vec3`] / [`Rotation`] — small fixed-size linear algebra, including
//!   Rodrigues axis-angle rotations as used by detector calibrations.
//! * [`DetectorGeometry`] — maps a detector pixel `(row, col)` to its
//!   laboratory-frame position, the role played by the `pixel_xyz` tables in
//!   the original APS reconstruction code.
//! * [`WireGeometry`] — the absorbing wire: axis, radius, and the scan
//!   trajectory (origin + step), yielding the wire centre for any scan index.
//! * [`DepthMapper`] — the core triangulation `pixel_xyz_to_depth`: given a
//!   pixel and a wire edge (leading or trailing tangent), intersect the
//!   grazing ray with the incident beam to obtain the depth along the beam
//!   from which the detected intensity originated.
//!
//! All lengths are in **micrometres** and all frames are right-handed. The
//! conventional beamline frame used throughout the examples and tests puts
//! the incident beam along `+z`, the detector above the sample along `+y`,
//! and the wire axis along `x` (perpendicular to both).

pub mod beam;
pub mod depth;
pub mod detector;
pub mod error;
pub mod rotation;
pub mod vec3;
pub mod wire;

pub use beam::Beam;
pub use depth::{DepthMapper, WireEdge};
pub use detector::DetectorGeometry;
pub use error::GeometryError;
pub use rotation::Rotation;
pub use vec3::Vec3;
pub use wire::WireGeometry;

/// Result alias for geometry operations.
pub type Result<T> = std::result::Result<T, GeometryError>;
