//! Error type for geometry construction and depth triangulation.

use std::fmt;

/// Everything that can go wrong while building beamline geometry or
/// triangulating a pixel back to a depth.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// A vector that must be non-zero (axis, beam direction, …) was zero.
    ZeroVector(&'static str),
    /// A scalar parameter was out of its valid domain.
    InvalidParameter {
        name: &'static str,
        value: f64,
        reason: &'static str,
    },
    /// A pixel index was outside the detector.
    PixelOutOfRange {
        row: usize,
        col: usize,
        n_rows: usize,
        n_cols: usize,
    },
    /// A wire scan index was outside the scan.
    StepOutOfRange { step: usize, n_steps: usize },
    /// The pixel projects inside the wire cross-section; no tangent exists.
    PixelInsideWire { distance: f64, radius: f64 },
    /// The grazing ray is (numerically) parallel to the incident beam.
    RayParallelToBeam,
    /// The beam is (numerically) parallel to the wire axis, so the
    /// triangulation plane degenerates.
    BeamParallelToWireAxis,
    /// The wire step direction has no component in the triangulation plane,
    /// so leading/trailing edges cannot be distinguished.
    StepParallelToWireAxis,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroVector(what) => write!(f, "{what} must be non-zero"),
            GeometryError::InvalidParameter {
                name,
                value,
                reason,
            } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            GeometryError::PixelOutOfRange {
                row,
                col,
                n_rows,
                n_cols,
            } => {
                write!(f, "pixel ({row}, {col}) outside {n_rows}×{n_cols} detector")
            }
            GeometryError::StepOutOfRange { step, n_steps } => {
                write!(f, "wire step {step} outside scan of {n_steps} steps")
            }
            GeometryError::PixelInsideWire { distance, radius } => write!(
                f,
                "pixel projects {distance} µm from wire axis, inside radius {radius} µm; no tangent"
            ),
            GeometryError::RayParallelToBeam => {
                write!(f, "grazing ray is parallel to the incident beam")
            }
            GeometryError::BeamParallelToWireAxis => {
                write!(f, "incident beam is parallel to the wire axis")
            }
            GeometryError::StepParallelToWireAxis => {
                write!(f, "wire step direction is parallel to the wire axis")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeometryError::PixelInsideWire {
            distance: 10.0,
            radius: 26.0,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("26"));

        let e = GeometryError::PixelOutOfRange {
            row: 9,
            col: 4,
            n_rows: 8,
            n_cols: 8,
        };
        assert!(e.to_string().contains("(9, 4)"));

        let e = GeometryError::InvalidParameter {
            name: "radius",
            value: -1.0,
            reason: "must be positive",
        };
        assert!(e.to_string().contains("radius"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GeometryError::RayParallelToBeam);
    }
}
