//! The incident X-ray beam: the line along which "depth" is measured.

use crate::error::GeometryError;
use crate::vec3::Vec3;

/// The incident (polychromatic) beam, modelled as a line.
///
/// Depth `d` denotes the point `origin + d * direction`; the sample surface
/// is conventionally at depth 0 with positive depths into the sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beam {
    /// A point on the beam (conventionally where the beam enters the sample).
    pub origin: Vec3,
    /// Unit direction of propagation.
    pub direction: Vec3,
}

impl Beam {
    /// Build a beam, normalising `direction`. Errors on a zero direction.
    pub fn new(origin: Vec3, direction: Vec3) -> Result<Beam, GeometryError> {
        let direction = direction
            .normalized()
            .ok_or(GeometryError::ZeroVector("beam direction"))?;
        Ok(Beam { origin, direction })
    }

    /// The conventional 34-ID-style beam: along `+z` through the origin.
    pub fn along_z() -> Beam {
        Beam {
            origin: Vec3::ZERO,
            direction: Vec3::Z,
        }
    }

    /// Point at a given depth along the beam.
    #[inline]
    pub fn point_at(&self, depth: f64) -> Vec3 {
        self.origin + self.direction * depth
    }

    /// Depth of the orthogonal projection of `p` onto the beam line.
    #[inline]
    pub fn depth_of(&self, p: Vec3) -> f64 {
        (p - self.origin).dot(self.direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_direction() {
        let b = Beam::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0)).unwrap();
        assert!(b.direction.approx_eq(Vec3::Z, 1e-15));
    }

    #[test]
    fn zero_direction_rejected() {
        assert_eq!(
            Beam::new(Vec3::ZERO, Vec3::ZERO).unwrap_err(),
            GeometryError::ZeroVector("beam direction")
        );
    }

    #[test]
    fn point_and_depth_round_trip() {
        let b = Beam::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 1.0, 0.0)).unwrap();
        for d in [-5.0, 0.0, 0.25, 42.0] {
            let p = b.point_at(d);
            assert!((b.depth_of(p) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn depth_of_off_axis_point_uses_projection() {
        let b = Beam::along_z();
        // A point displaced perpendicular to the beam has the same depth.
        assert_eq!(b.depth_of(Vec3::new(10.0, -3.0, 7.0)), 7.0);
    }
}
