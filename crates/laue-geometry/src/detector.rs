//! Area-detector calibration: pixel indices → laboratory-frame positions.
//!
//! The calibration follows the convention of the APS reconstruction code: a
//! detector is a regular grid of pixels in its own frame, placed in the lab
//! by a Rodrigues rotation plus a translation. `pixel_to_xyz` plays the role
//! of the `pixel_xyz` lookup used by the original `depth.c`.

use crate::error::GeometryError;
use crate::rotation::Rotation;
use crate::vec3::Vec3;

/// Calibrated area detector geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorGeometry {
    /// Number of pixel rows (slow axis).
    pub n_rows: usize,
    /// Number of pixel columns (fast axis).
    pub n_cols: usize,
    /// Pixel pitch along the row (slow) axis, µm.
    pub pixel_pitch_row: f64,
    /// Pixel pitch along the column (fast) axis, µm.
    pub pixel_pitch_col: f64,
    /// Rotation taking detector-frame vectors to the lab frame.
    pub rotation: Rotation,
    /// Lab-frame position of the detector centre, µm.
    pub translation: Vec3,
}

impl DetectorGeometry {
    /// Build and validate a detector geometry.
    pub fn new(
        n_rows: usize,
        n_cols: usize,
        pixel_pitch_row: f64,
        pixel_pitch_col: f64,
        rotation: Rotation,
        translation: Vec3,
    ) -> Result<Self, GeometryError> {
        if n_rows == 0 {
            return Err(GeometryError::InvalidParameter {
                name: "n_rows",
                value: 0.0,
                reason: "detector must have at least one row",
            });
        }
        if n_cols == 0 {
            return Err(GeometryError::InvalidParameter {
                name: "n_cols",
                value: 0.0,
                reason: "detector must have at least one column",
            });
        }
        if pixel_pitch_row <= 0.0 || !pixel_pitch_row.is_finite() {
            return Err(GeometryError::InvalidParameter {
                name: "pixel_pitch_row",
                value: pixel_pitch_row,
                reason: "pixel pitch must be positive and finite",
            });
        }
        if pixel_pitch_col <= 0.0 || !pixel_pitch_col.is_finite() {
            return Err(GeometryError::InvalidParameter {
                name: "pixel_pitch_col",
                value: pixel_pitch_col,
                reason: "pixel pitch must be positive and finite",
            });
        }
        Ok(DetectorGeometry {
            n_rows,
            n_cols,
            pixel_pitch_row,
            pixel_pitch_col,
            rotation,
            translation,
        })
    }

    /// A convenient test/example geometry: detector of `n_rows × n_cols`
    /// pixels with `pitch` µm pitch, lying parallel to the x–z plane at
    /// height `height` µm above the sample (beam along `+z`, detector normal
    /// `-y`, i.e. looking down at the sample). Rows advance along `+z`
    /// (downstream), columns along `+x` (the wire axis).
    pub fn overhead(
        n_rows: usize,
        n_cols: usize,
        pitch: f64,
        height: f64,
    ) -> Result<Self, GeometryError> {
        // Detector frame: row axis = +z, col axis = +x. Build the rotation
        // taking detector axes (u=cols→x̂_det, v=rows→ŷ_det) into lab (x, z).
        // Using explicit rows: lab = R * det where det basis (e_col, e_row, n).
        let rotation = Rotation {
            rows: [
                Vec3::new(1.0, 0.0, 0.0),  // lab x gets detector col axis
                Vec3::new(0.0, 0.0, -1.0), // lab y gets -detector normal
                Vec3::new(0.0, 1.0, 0.0),  // lab z gets detector row axis
            ],
        };
        DetectorGeometry::new(
            n_rows,
            n_cols,
            pitch,
            pitch,
            rotation,
            Vec3::new(0.0, height, 0.0),
        )
    }

    /// Number of pixels per image.
    #[inline]
    pub fn n_pixels(&self) -> usize {
        self.n_rows * self.n_cols
    }

    /// Lab-frame position of the centre of pixel `(row, col)`.
    ///
    /// Pixel `(0, 0)` is one corner; the detector centre (the `translation`)
    /// corresponds to fractional pixel `((n_rows-1)/2, (n_cols-1)/2)`.
    pub fn pixel_to_xyz(&self, row: usize, col: usize) -> Result<Vec3, GeometryError> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(GeometryError::PixelOutOfRange {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        Ok(self.pixel_to_xyz_unchecked(row as f64, col as f64))
    }

    /// As [`pixel_to_xyz`](Self::pixel_to_xyz) but for fractional
    /// (sub-pixel) coordinates and without bounds checking — used by the hot
    /// table-building loops after bounds are established once.
    #[inline]
    pub fn pixel_to_xyz_unchecked(&self, row: f64, col: f64) -> Vec3 {
        let dr = (row - (self.n_rows as f64 - 1.0) / 2.0) * self.pixel_pitch_row;
        let dc = (col - (self.n_cols as f64 - 1.0) / 2.0) * self.pixel_pitch_col;
        // Detector frame: (col axis, row axis, normal) = (x̂, ŷ, ẑ) pre-rotation.
        let det = Vec3::new(dc, dr, 0.0);
        self.rotation.apply(det) + self.translation
    }

    /// A sub-detector covering rows `r0..r0+n_rows` and columns
    /// `c0..c0+n_cols` of this detector: pixel `(r, c)` of the crop sits at
    /// exactly the same lab position as pixel `(r0 + r, c0 + c)` of the
    /// original. Used for region-of-interest reconstructions.
    pub fn crop(
        &self,
        r0: usize,
        c0: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> Result<DetectorGeometry, GeometryError> {
        if r0 + n_rows > self.n_rows || c0 + n_cols > self.n_cols {
            return Err(GeometryError::PixelOutOfRange {
                row: r0 + n_rows.saturating_sub(1),
                col: c0 + n_cols.saturating_sub(1),
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        // The crop's centre pixel index, expressed in original coordinates,
        // determines the new translation.
        let centre_row = r0 as f64 + (n_rows as f64 - 1.0) / 2.0;
        let centre_col = c0 as f64 + (n_cols as f64 - 1.0) / 2.0;
        let translation = self.pixel_to_xyz_unchecked(centre_row, centre_col);
        DetectorGeometry::new(
            n_rows,
            n_cols,
            self.pixel_pitch_row,
            self.pixel_pitch_col,
            self.rotation,
            translation,
        )
    }

    /// Build the full `n_rows × n_cols` table of pixel positions in row-major
    /// order. This is the `pixel_xyz` array the original code precomputes on
    /// the host and ships to the device.
    pub fn pixel_table(&self) -> Vec<Vec3> {
        let mut out = Vec::with_capacity(self.n_pixels());
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                out.push(self.pixel_to_xyz_unchecked(r as f64, c as f64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overhead_8x6() -> DetectorGeometry {
        DetectorGeometry::overhead(8, 6, 100.0, 50_000.0).unwrap()
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(DetectorGeometry::new(0, 4, 1.0, 1.0, Rotation::IDENTITY, Vec3::ZERO).is_err());
        assert!(DetectorGeometry::new(4, 0, 1.0, 1.0, Rotation::IDENTITY, Vec3::ZERO).is_err());
        assert!(DetectorGeometry::new(4, 4, 0.0, 1.0, Rotation::IDENTITY, Vec3::ZERO).is_err());
        assert!(DetectorGeometry::new(4, 4, 1.0, -2.0, Rotation::IDENTITY, Vec3::ZERO).is_err());
        assert!(
            DetectorGeometry::new(4, 4, f64::NAN, 1.0, Rotation::IDENTITY, Vec3::ZERO).is_err()
        );
    }

    #[test]
    fn centre_pixel_sits_at_translation() {
        // 9x9 detector has an exact centre pixel (4,4).
        let det = DetectorGeometry::overhead(9, 9, 100.0, 50_000.0).unwrap();
        let p = det.pixel_to_xyz(4, 4).unwrap();
        assert!(p.approx_eq(Vec3::new(0.0, 50_000.0, 0.0), 1e-9));
    }

    #[test]
    fn overhead_axes_follow_convention() {
        let det = overhead_8x6();
        let a = det.pixel_to_xyz(0, 0).unwrap();
        let b = det.pixel_to_xyz(0, 1).unwrap(); // one column over → +x
        let c = det.pixel_to_xyz(1, 0).unwrap(); // one row down → +z
        assert!((b - a).approx_eq(Vec3::new(100.0, 0.0, 0.0), 1e-9));
        assert!((c - a).approx_eq(Vec3::new(0.0, 0.0, 100.0), 1e-9));
        // all pixels at the detector height
        assert!((a.y - 50_000.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_pixels_rejected() {
        let det = overhead_8x6();
        assert!(det.pixel_to_xyz(7, 5).is_ok());
        assert!(matches!(
            det.pixel_to_xyz(8, 0),
            Err(GeometryError::PixelOutOfRange { .. })
        ));
        assert!(matches!(
            det.pixel_to_xyz(0, 6),
            Err(GeometryError::PixelOutOfRange { .. })
        ));
    }

    #[test]
    fn pixel_table_matches_individual_queries() {
        let det = overhead_8x6();
        let table = det.pixel_table();
        assert_eq!(table.len(), 48);
        for r in 0..det.n_rows {
            for c in 0..det.n_cols {
                assert_eq!(table[r * det.n_cols + c], det.pixel_to_xyz(r, c).unwrap());
            }
        }
    }

    #[test]
    fn fractional_pixels_interpolate() {
        let det = overhead_8x6();
        let a = det.pixel_to_xyz_unchecked(0.0, 0.0);
        let b = det.pixel_to_xyz_unchecked(0.0, 1.0);
        let mid = det.pixel_to_xyz_unchecked(0.0, 0.5);
        assert!(mid.approx_eq((a + b) * 0.5, 1e-9));
    }

    #[test]
    fn crop_preserves_pixel_positions() {
        let det = DetectorGeometry::overhead(10, 12, 150.0, 40_000.0).unwrap();
        let crop = det.crop(2, 3, 5, 6).unwrap();
        assert_eq!(crop.n_rows, 5);
        assert_eq!(crop.n_cols, 6);
        for r in 0..5 {
            for c in 0..6 {
                let a = crop.pixel_to_xyz(r, c).unwrap();
                let b = det.pixel_to_xyz(r + 2, c + 3).unwrap();
                assert!(a.approx_eq(b, 1e-9), "({r},{c}): {a:?} vs {b:?}");
            }
        }
        // Whole-detector crop is the identity mapping.
        let full = det.crop(0, 0, 10, 12).unwrap();
        assert!(full
            .pixel_to_xyz(9, 11)
            .unwrap()
            .approx_eq(det.pixel_to_xyz(9, 11).unwrap(), 1e-9));
        // Out-of-range crops rejected.
        assert!(det.crop(6, 0, 5, 12).is_err());
        assert!(det.crop(0, 10, 10, 3).is_err());
    }

    #[test]
    fn crop_of_rotated_detector_still_matches() {
        let rot = Rotation::from_axis_angle(Vec3::new(0.3, 0.5, 0.8).normalized().unwrap(), 0.4);
        let det =
            DetectorGeometry::new(8, 8, 100.0, 120.0, rot, Vec3::new(500.0, 30_000.0, -200.0))
                .unwrap();
        let crop = det.crop(1, 2, 4, 3).unwrap();
        for r in 0..4 {
            for c in 0..3 {
                let a = crop.pixel_to_xyz(r, c).unwrap();
                let b = det.pixel_to_xyz(r + 1, c + 2).unwrap();
                assert!(a.approx_eq(b, 1e-9));
            }
        }
    }

    #[test]
    fn rotated_detector_moves_pixels() {
        // Tilt detector 30° about x: pixel plane no longer at constant y.
        let rot = Rotation::from_axis_angle(Vec3::X, 30f64.to_radians());
        let base = DetectorGeometry::overhead(4, 4, 100.0, 1000.0).unwrap();
        let tilted = DetectorGeometry::new(
            4,
            4,
            100.0,
            100.0,
            base.rotation.then(&rot),
            base.translation,
        )
        .unwrap();
        let ys: Vec<f64> = (0..4)
            .map(|r| tilted.pixel_to_xyz(r, 0).unwrap().y)
            .collect();
        assert!(
            (ys[0] - ys[3]).abs() > 1.0,
            "tilt should spread pixel heights: {ys:?}"
        );
    }
}
