//! # laue — wire-scan Laue depth reconstruction
//!
//! A from-scratch Rust reproduction of *"Accelerating the Depth
//! Reconstruction Algorithm with CUDA/GPU"* (Yue, Schwarz & Tischler, IEEE
//! CLUSTER 2015): the differential-aperture (wire-scan) depth
//! reconstruction used at APS beamline 34-ID-E, its sequential CPU
//! baseline, and the paper's CUDA design executed on a software CUDA-like
//! device with a calibrated virtual-time cost model.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`geometry`] | `laue-geometry` | detector/wire/beam math, pixel→depth triangulation |
//! | [`container`] | `mh5` | the HDF5-subset scientific container |
//! | [`sim`] | `cuda-sim` | the simulated device (memory, kernels, atomics, virtual time) |
//! | [`core`] | `laue-core` | the reconstruction algorithm + CPU/GPU engines |
//! | [`wire`] | `laue-wire` | forward model & synthetic workload generator |
//! | [`pipeline`] | `laue-pipeline` | end-to-end runs, reports, exports |
//! | [`serve`] | `laue-serve` | multi-tenant job scheduling over a simulated GPU fleet |
//!
//! # Quickstart
//!
//! ```
//! use laue::prelude::*;
//!
//! // 1. Synthesize a wire scan with known ground truth.
//! let scan = SyntheticScanBuilder::new(8, 8, 16).scatterers(3).seed(1).build().unwrap();
//!
//! // 2. Reconstruct it with the paper's GPU design (simulated device).
//! let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 300);
//! let pipeline = Pipeline::default();
//! let mut source = InMemorySlabSource::new(
//!     scan.images.clone(), 16, 8, 8,
//! ).unwrap();
//! let report = pipeline
//!     .run_source(&mut source, &scan.geometry, &cfg, Engine::Gpu { layout: Layout::Flat1d })
//!     .unwrap();
//!
//! // 3. The depth of each scatterer is recovered.
//! let s = &scan.truth.scatterers[0];
//! let peak = report.image.pixel_peak_depth(s.row, s.col, &cfg).unwrap();
//! assert!((peak - s.depth).abs() < 25.0);
//! ```

pub use laue_core as core;
pub use laue_geometry as geometry;
pub use laue_pipeline as pipeline;
pub use laue_serve as serve;
pub use laue_wire as wire;
pub use mh5 as container;

/// The simulated CUDA-like device (re-export of `cuda-sim`).
pub use cuda_sim as sim;

/// The types most programs need.
pub mod prelude {
    pub use cuda_sim::{Device, DeviceProps, ExecMode, FaultPlan, FaultStats, HostProps};
    pub use laue_core::cache::{DepthTableCache, TableCacheStats};
    pub use laue_core::gpu::{GpuOptions, Layout, PipelineDepth, Triangulation};
    pub use laue_core::journal::{CommittedSlab, JournalKey, RunJournal, SlabProgress};
    pub use laue_core::multi::{
        reconstruct_multi, reconstruct_multi_checkpointed, reconstruct_multi_pipelined,
    };
    pub use laue_core::planning::{pixel_scan_info, plan_scan, PixelScanInfo, ScanPlan};
    pub use laue_core::post::{depth_map, find_peaks, DepthMapOptions, DepthPeak};
    pub use laue_core::{
        cpu, gpu, AccumulationMode, CompactionMode, DepthImage, InMemorySlabSource, IntegrityMode,
        IntegrityReport, PlanMode, ReconstructionConfig, ScanGeometry, ScanView, SlabSource,
        WireEdge,
    };
    pub use laue_geometry::{Beam, DepthMapper, DetectorGeometry, Vec3, WireGeometry};
    pub use laue_pipeline::{
        Engine, GpuFailurePolicy, Pipeline, RecoveryAccounting, ResumeInfo, RunReport,
    };
    pub use laue_serve::{
        serve, AdmissionPolicy, BatchPolicy, JobClass, JobShape, JobSpec, ServeConfig, ServeReport,
        Workload, WorkloadSpec,
    };
    pub use laue_wire::{
        read_scan, write_scan, SamplePlan, Scatterer, SyntheticScan, SyntheticScanBuilder,
    };
}
