//! The paper's evaluation claims, asserted as tests: the *shapes* of
//! Fig 4, Fig 8 and Fig 9, and the §IV headline speedup, must hold in the
//! calibrated virtual-time model.

use laue::prelude::*;

fn scan(rows: usize, cols: usize, steps: usize, seed: u64) -> SyntheticScan {
    SyntheticScanBuilder::new(rows, cols, steps)
        .scatterers(rows * cols / 8)
        .noise(1.0) // noise makes every differential non-zero → 100 % active
        .background(20.0)
        .seed(seed)
        .build()
        .unwrap()
}

fn run(scan: &SyntheticScan, cfg: &ReconstructionConfig, engine: Engine) -> RunReport {
    let mut source = InMemorySlabSource::new(
        scan.images.clone(),
        scan.geometry.wire.n_steps,
        scan.geometry.detector.n_rows,
        scan.geometry.detector.n_cols,
    )
    .unwrap();
    Pipeline::default()
        .run_source(&mut source, &scan.geometry, cfg, engine)
        .unwrap()
}

fn cfg() -> ReconstructionConfig {
    ReconstructionConfig::new(-2500.0, 2500.0, 200)
}

/// Fig 4: the 1-D flat layout beats the 3-D pointer-table layout, because
/// the pointer design ships more transfers over PCIe.
#[test]
fn fig4_flat_layout_beats_pointer_layout() {
    let s = scan(32, 32, 24, 11);
    let flat = run(
        &s,
        &cfg(),
        Engine::Gpu {
            layout: Layout::Flat1d,
        },
    );
    let ptr = run(
        &s,
        &cfg(),
        Engine::Gpu {
            layout: Layout::Pointer3d,
        },
    );
    assert_eq!(flat.image.data, ptr.image.data);
    assert!(ptr.transfers > flat.transfers);
    assert!(
        ptr.total_time_s > flat.total_time_s,
        "1D {:.6}s must beat 3D {:.6}s",
        flat.total_time_s,
        ptr.total_time_s
    );
    // And compute time is identical up to index arithmetic — the gap is
    // communication, as §III-B argues.
    assert!(ptr.comm_time_s > flat.comm_time_s);
}

/// Fig 8 + §IV headline: at realistic scale the GPU runs in a fraction of
/// the CPU time (paper: 25–30 %), and the GPU curve is much flatter as the
/// data grows.
#[test]
fn fig8_speedup_and_scalability_shape() {
    let sizes = [(24usize, 24usize), (32, 32), (40, 40), (48, 48)];
    let mut cpu_times = Vec::new();
    let mut gpu_times = Vec::new();
    for (i, &(r, c)) in sizes.iter().enumerate() {
        let s = scan(r, c, 24, 20 + i as u64);
        let cpu = run(&s, &cfg(), Engine::CpuSeq);
        let gpu = run(
            &s,
            &cfg(),
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        );
        assert_eq!(cpu.image.data, gpu.image.data);
        cpu_times.push(cpu.total_time_s);
        gpu_times.push(gpu.total_time_s);
    }
    // Headline, directionally: GPU clearly wins at the largest size. (These
    // integration-test stacks are small and transfer-heavy; the calibrated
    // 25–30 % number is reproduced by `laue-bench --bin fig8_datasize` on
    // the full-scale workloads.)
    let ratio = gpu_times[3] / cpu_times[3];
    assert!(ratio < 0.7, "GPU/CPU ratio {ratio} too high");
    assert!(ratio > 0.02, "ratio {ratio} implausibly low for this model");
    // Scalability: CPU grows much faster than GPU across the sweep.
    let cpu_growth = cpu_times[3] / cpu_times[0];
    let gpu_growth = gpu_times[3] / gpu_times[0];
    assert!(
        gpu_growth < cpu_growth,
        "GPU must scale flatter: gpu ×{gpu_growth:.2} vs cpu ×{cpu_growth:.2}"
    );
}

/// Fig 9: sweeping the pixel percentage (via the intensity cutoff), the GPU
/// wins at every level and the margin grows with the active fraction.
#[test]
fn fig9_pixel_percentage_shape() {
    let s = scan(40, 40, 24, 31);
    // Derive cutoffs that land near 100 %, ~50 %, ~25 % active pairs: since
    // noise ~ N(0, σ·√v), percentiles of |ΔI| give the cutoffs. Estimate
    // from the data.
    let mut deltas: Vec<f64> = Vec::new();
    let (p, m, n) = (24, 40, 40);
    for z in 0..p - 1 {
        for px in 0..m * n {
            deltas.push((s.images[z * m * n + px] - s.images[(z + 1) * m * n + px]).abs());
        }
    }
    deltas.sort_by(f64::total_cmp);
    let q = |f: f64| deltas[(deltas.len() as f64 * f) as usize];
    let cutoffs = [0.0, q(0.5), q(0.75)];

    let mut fractions = Vec::new();
    let mut ratios = Vec::new();
    for &cut in &cutoffs {
        let mut c = cfg();
        c.intensity_cutoff = cut;
        let cpu = run(&s, &c, Engine::CpuSeq);
        let gpu = run(
            &s,
            &c,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        );
        fractions.push(gpu.stats.active_fraction());
        ratios.push(gpu.total_time_s / cpu.total_time_s);
    }
    // At full load the GPU must win. (At low percentages the crossover is
    // scale-dependent: this integration-test stack is small and
    // transfer-heavy; the paper-scale sweep where the GPU wins at every
    // percentage is reproduced by `laue-bench --bin fig9_pixel_percentage`.)
    assert!(
        ratios[0] < 1.0,
        "GPU must win at 100 % active: ratio {}",
        ratios[0]
    );
    // The active fractions really do sweep downward.
    assert!(
        fractions[0] > 0.95,
        "no cutoff → ~100 % active, got {}",
        fractions[0]
    );
    assert!(fractions[1] < 0.6 && fractions[1] > 0.3);
    assert!(fractions[2] < 0.35);
    // The paper: "the more pixels we handle, the better performance we can
    // get" — the GPU's advantage (1/ratio) grows with the active fraction.
    assert!(
        ratios[0] < ratios[2],
        "GPU margin must grow with pixel percentage: ratios {ratios:?}"
    );
}

/// Fig 9, compaction corollary: with the sparsity pass on, the modeled GPU
/// kernel time is ≈ linear in the active-pixel fraction — the prescan is a
/// constant density-independent term and the compacted main launch does
/// work proportional to the surviving pairs. And at the paper's sparsest
/// operating point (~25 % active) the compacted engine, prescan cost
/// included, runs the kernels in at most half the dense time.
#[test]
fn fig9_compaction_scales_linearly_with_active_fraction() {
    let s = scan(96, 96, 32, 61);
    let mut deltas: Vec<f64> = Vec::new();
    let (p, m, n) = (32, 96, 96);
    for z in 0..p - 1 {
        for px in 0..m * n {
            deltas.push((s.images[z * m * n + px] - s.images[(z + 1) * m * n + px]).abs());
        }
    }
    deltas.sort_by(f64::total_cmp);
    let q = |f: f64| deltas[(deltas.len() as f64 * f) as usize];

    // Sweep ~25 / 50 / 100 % active under both traversals.
    let mut fractions = Vec::new();
    let mut compact_times = Vec::new();
    let mut dense_times = Vec::new();
    for cut in [q(0.75), q(0.5), 0.0] {
        let mut c = cfg();
        c.intensity_cutoff = cut;
        c.compaction = CompactionMode::On;
        let compact = run(
            &s,
            &c,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        );
        c.compaction = CompactionMode::Off;
        let dense = run(
            &s,
            &c,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        );
        assert_eq!(
            compact.image.data, dense.image.data,
            "compaction must be bit-identical at every density"
        );
        fractions.push(dense.stats.active_fraction());
        compact_times.push(compact.compute_time_s);
        dense_times.push(dense.compute_time_s);
    }

    // Acceptance: at ~25 % active the compacted kernels (prescan included)
    // take at most half the dense kernel time.
    assert!(fractions[0] < 0.35, "sparsest point at {}", fractions[0]);
    assert!(
        compact_times[0] <= 0.5 * dense_times[0],
        "compact {:.6}s must be ≤ half of dense {:.6}s at {:.0} % active",
        compact_times[0],
        dense_times[0],
        100.0 * fractions[0]
    );

    // Linearity: the secant slopes of t(fraction) agree. A constant offset
    // (prescan + launch overhead) plus a term ∝ active pairs is exactly
    // what the compacted cost model promises.
    let slope01 = (compact_times[1] - compact_times[0]) / (fractions[1] - fractions[0]);
    let slope12 = (compact_times[2] - compact_times[1]) / (fractions[2] - fractions[1]);
    assert!(
        slope01 > 0.0 && slope12 > 0.0,
        "compact time must grow with density: slopes {slope01:.3e}, {slope12:.3e}"
    );
    let skew = slope01 / slope12;
    assert!(
        (0.6..=1.4).contains(&skew),
        "t(active fraction) must be ≈ linear: secant slopes {slope01:.3e} vs \
         {slope12:.3e} (skew {skew:.2})"
    );
}

/// The overlap ablation: a deeper pipeline ring shortens the makespan
/// whenever there are several slabs in flight.
#[test]
fn overlap_ablation_shortens_makespan() {
    let s = scan(32, 32, 16, 41);
    let mut c = cfg();
    c.rows_per_slab = Some(4); // 8 slabs
    let serial = run(
        &s,
        &c,
        Engine::Gpu {
            layout: Layout::Flat1d,
        },
    );
    let overlapped = run(&s, &c, Engine::GpuPipelined);
    assert_eq!(overlapped.pipeline_depth, 3);
    assert_eq!(serial.image.data, overlapped.image.data);
    assert!(
        overlapped.total_time_s < serial.total_time_s,
        "overlap {:.6}s must beat serial {:.6}s",
        overlapped.total_time_s,
        serial.total_time_s
    );
    // Lower bound: kernels all share the compute stream, so the makespan
    // can never beat the total kernel time. (Total comm is *not* a bound:
    // H2D and D2H ride different streams, like full-duplex PCIe.)
    assert!(overlapped.total_time_s >= overlapped.compute_time_s - 1e-12);
}

/// The CAS-loop f64 atomicAdd is exact: the GPU engine's totals equal the
/// CPU's regardless of executor threading.
#[test]
fn atomic_accumulation_is_exact_under_threading() {
    let s = scan(24, 24, 16, 51);
    let c = cfg();
    let cpu = run(&s, &c, Engine::CpuSeq);
    let mut source = InMemorySlabSource::new(s.images.clone(), 16, 24, 24).unwrap();
    let pipeline = Pipeline {
        exec_mode: laue::sim::ExecMode::Threaded(4),
        ..Pipeline::default()
    };
    let gpu = pipeline
        .run_source(
            &mut source,
            &s.geometry,
            &c,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        )
        .unwrap();
    let scale = cpu.image.data.iter().fold(1.0f64, |a, &b| a.max(b.abs()));
    assert!(cpu.image.max_abs_diff(&gpu.image) <= 1e-9 * scale);
    assert_eq!(cpu.stats, gpu.stats);
}

/// §III-C follow-on: on the paper's Tesla M2070 a fig9-style fully-active
/// stack is accumulation-bound — Fermi emulates every f64 atomicAdd with a
/// CAS loop — so staging deposits in shared-memory privatized tiles and
/// committing one global add per touched (pixel, bin) cell cuts the modeled
/// kernel time to well under 60 % of the atomic path, while staying
/// bit-identical.
#[test]
fn privatized_accumulation_cuts_cas_kernel_time_on_m2070() {
    let s = scan(32, 32, 64, 71);
    let c = ReconstructionConfig::new(-4000.0, 4000.0, 200);
    let atomic = run(
        &s,
        &c,
        Engine::Gpu {
            layout: Layout::Flat1d,
        },
    );
    let mut cp = c.clone();
    cp.accumulation = AccumulationMode::Privatized;
    let privatized = run(
        &s,
        &cp,
        Engine::Gpu {
            layout: Layout::Flat1d,
        },
    );

    // Exactness is free: the deterministic reduction commits the same sums.
    assert_eq!(atomic.image.data, privatized.image.data);
    // A 200-bin tile row fits the M2070's 48 KiB of shared memory, so every
    // slab privatizes and the report says so.
    assert!(!privatized.slab_privatized.is_empty());
    assert!(privatized.slab_privatized.iter().all(|&p| p));
    assert_eq!(
        privatized.stats.privatized_pairs,
        privatized.stats.pairs_total
    );
    assert_eq!(privatized.stats.accum_fallback_pairs, 0);
    assert!(atomic.slab_privatized.is_empty());

    let ratio = privatized.compute_time_s / atomic.compute_time_s;
    assert!(
        ratio <= 0.60,
        "privatized kernel {:.6}s must be ≤ 60 % of atomic {:.6}s (ratio {ratio:.3})",
        privatized.compute_time_s,
        atomic.compute_time_s
    );
    assert!(
        ratio > 0.05,
        "ratio {ratio:.3} implausibly low — shared-tile traffic is not free"
    );
}
