//! The CI chaos matrix: every scripted *silent-corruption* schedule runs
//! end-to-end through the CLI, swept over the pipelined engines
//! (`gpu-pipe`, `gpu-multi:2`) and both checking integrity modes. The
//! invariant under test is the ISSUE's no-silent-mismatch guarantee:
//!
//! * `--integrity scrub`  — the run must complete, report itself
//!   INTEGRITY-DEGRADED (the fault fired *and* was caught), and export an
//!   image bit-identical to the fault-free reference.
//! * `--integrity verify` — the run must either abort with a detected
//!   integrity violation or complete bit-identical. A completed run with
//!   a diverging image is the one outcome that fails the matrix.
//!
//! CI fans the specs out with `LAUE_FAULT_SPEC` and uploads the report
//! directory as an artifact.
//!
//! * `LAUE_FAULT_SPEC`  — run one named spec (unset: run all of them).
//! * `LAUE_REPORT_DIR`  — report directory (default `target/chaos-reports`).

use laue::pipeline::cli;
use laue::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

/// Name → `--inject-gpu-fault` schedule. One entry per silent-corruption
/// family the simulator can script (checked transfers catch the flips in
/// flight; ABFT catches the kernel flip; the watchdog catches the stall).
const SPECS: &[(&str, &str)] = &[
    ("flip-h2d", "seed=5,flip-h2d-nth=2"),
    ("flip-d2h", "seed=5,flip-d2h-nth=1,flip-byte=3"),
    ("flip-kernel", "seed=5,flip-kernel-nth=1,flip-op=3"),
    ("stalled-kernel", "seed=5,stall-nth=1,stall-s=5.0"),
];

const ENGINES: &[&str] = &["gpu-pipe", "gpu-multi:2"];
const MODES: &[&str] = &["verify", "scrub"];

/// The distributed row of the matrix: not a silent-corruption schedule but
/// a hard chassis loss on `gpu-cluster:3x1` (see
/// `chaos_matrix_node_loss_rebands_onto_survivors`).
const NODE_LOSS: &str = "node-loss";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("laue_chaos_{}_{name}", std::process::id()))
}

fn report_dir() -> PathBuf {
    std::env::var("LAUE_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/chaos-reports"))
}

fn sv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

fn base_argv(scan_s: &str, engine: &str, out: &str, jdir: &str) -> Vec<String> {
    let mut argv = sv(&[
        "reconstruct",
        "--input",
        scan_s,
        "--engine",
        engine,
        "--bins",
        "200",
        "--rows-per-slab",
        "2",
        "--journal-dir",
        jdir,
        "--out",
        out,
    ]);
    if engine.starts_with("gpu-multi") {
        // Pin the fault plan to one fleet device so the schedule is the
        // same regardless of how bands are split across the fleet.
        argv.extend(sv(&["--fault-device", "0"]));
    }
    argv
}

fn read_image(path: &PathBuf) -> Vec<f64> {
    let f = laue::container::FileReader::open(path)
        .unwrap_or_else(|e| panic!("{}: no output written: {e}", path.display()));
    let ds = f.resolve_path("/reconstruction/depth_image").unwrap();
    f.read_all(ds).unwrap()
}

/// Run one (spec, engine, mode) cell and write its report file.
fn run_cell(name: &str, spec: &str, engine: &str, mode: &str, scan_s: &str, clean: &[f64]) {
    let tag = format!("{name}_{}_{mode}", engine.replace(':', "-"));
    let jdir = tmp(&format!("{tag}_jrn"));
    let _ = std::fs::remove_dir_all(&jdir);
    let out_path = tmp(&format!("{tag}_out")).with_extension("mh5");
    let mut argv = base_argv(
        scan_s,
        engine,
        &out_path.to_string_lossy(),
        &jdir.to_string_lossy(),
    );
    argv.extend(sv(&["--integrity", mode, "--inject-gpu-fault", spec]));
    let cmd = cli::parse(&argv).unwrap_or_else(|e| panic!("{tag}: parse failed: {e}"));
    let mut buf = Vec::new();
    let outcome = cli::run(&cmd, &mut buf);
    let summary = String::from_utf8(buf).unwrap();

    let status = match outcome {
        Err(e) => {
            // Only a *detected* abort is acceptable; any other error class
            // means the harness, not the integrity machinery, tripped.
            let msg = e.to_string();
            assert_eq!(mode, "verify", "{tag}: scrub must repair, got: {msg}");
            assert!(
                msg.contains("integrity"),
                "{tag}: aborted without a detected integrity violation: {msg}"
            );
            format!("ABORTED on detected corruption: {msg}")
        }
        Ok(()) => {
            // A completed run must be bit-identical to the fault-free
            // reference — a diverging export is a silent mismatch, the one
            // outcome the matrix exists to rule out.
            let data = read_image(&out_path);
            assert_eq!(data.len(), clean.len(), "{tag}: dims changed");
            for (i, (a, b)) in data.iter().zip(clean).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{tag}: SILENT MISMATCH at voxel {i}: {a} vs {b}"
                );
            }
            // Every spec fires deterministically, so a completed run must
            // have detected (and repaired) its fault: scrub re-executes
            // condemned slabs, and verify still corrects transfer-CRC
            // failures by retransmission. A completed run that detected
            // nothing would be vacuous coverage.
            assert!(
                summary.contains("INTEGRITY-DEGRADED"),
                "{tag}: fault never fired or was never detected:\n{summary}"
            );
            // A finished run always retires its journal.
            assert_eq!(
                std::fs::read_dir(&jdir).map(|d| d.count()).unwrap_or(0),
                0,
                "{tag}: journal left behind"
            );
            "PASS (bit-identical to the fault-free reference)".to_string()
        }
    };

    let dir = report_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut rpt = std::fs::File::create(dir.join(format!("{tag}.txt"))).unwrap();
    writeln!(rpt, "spec: {spec}").unwrap();
    writeln!(rpt, "engine: {engine}  integrity: {mode}").unwrap();
    writeln!(rpt, "status: {status}").unwrap();
    if !summary.is_empty() {
        writeln!(rpt, "--- run summary ---\n{summary}").unwrap();
    }

    std::fs::remove_file(&out_path).ok();
    std::fs::remove_dir_all(&jdir).ok();
}

#[test]
fn chaos_matrix_never_exports_a_silent_mismatch() {
    // Noise keeps every slab deposit-dense, so the scripted kernel flip
    // always has a deposit to land on whichever launch it arms.
    let scan = SyntheticScanBuilder::new(10, 8, 12)
        .scatterers(5)
        .background(12.0)
        .noise(2.0)
        .seed(23)
        .build()
        .unwrap();
    let scan_path = tmp("scan").with_extension("mh5");
    write_scan(
        &scan_path,
        &scan.geometry,
        &scan.images,
        Some(&scan.truth),
        3,
    )
    .unwrap();
    let scan_s = scan_path.to_string_lossy().to_string();

    let only = std::env::var("LAUE_FAULT_SPEC").ok();
    if let Some(name) = &only {
        assert!(
            SPECS.iter().any(|(n, _)| n == name) || name == NODE_LOSS,
            "unknown LAUE_FAULT_SPEC {name:?}; known: {:?} + {NODE_LOSS:?}",
            SPECS.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
        if name == NODE_LOSS {
            // The node-loss row runs in its own test below; nothing in the
            // corruption sweep is selected.
            std::fs::remove_file(&scan_path).ok();
            return;
        }
    }

    for engine in ENGINES {
        // Fault-free reference through the same CLI path, per engine (the
        // fleet may band rows differently than the single-device ring).
        let clean_out = tmp(&format!("clean_{}", engine.replace(':', "-"))).with_extension("mh5");
        let clean_jdir = tmp(&format!("clean_{}_jrn", engine.replace(':', "-")));
        let _ = std::fs::remove_dir_all(&clean_jdir);
        let argv = base_argv(
            &scan_s,
            engine,
            &clean_out.to_string_lossy(),
            &clean_jdir.to_string_lossy(),
        );
        let cmd = cli::parse(&argv).unwrap();
        cli::run(&cmd, &mut Vec::new()).unwrap();
        let clean = read_image(&clean_out);
        std::fs::remove_file(&clean_out).ok();
        let _ = std::fs::remove_dir_all(&clean_jdir);

        for (name, spec) in SPECS {
            if only.as_deref().is_none_or(|o| o == *name) {
                for mode in MODES {
                    run_cell(name, spec, engine, mode, &scan_s, &clean);
                }
            }
        }
    }

    std::fs::remove_file(&scan_path).ok();
}

/// The node-loss row: kill one chassis' only device mid-round on
/// `gpu-cluster:3x1` under `--integrity verify`. The survivors must re-band
/// the dead node's uncovered rows, the run must complete and report itself
/// DEGRADED, and the export must stay bit-identical to the fault-free
/// cluster reference — losing a third of the fleet may cost time, never
/// bits.
#[test]
fn chaos_matrix_node_loss_rebands_onto_survivors() {
    let only = std::env::var("LAUE_FAULT_SPEC").ok();
    if only.as_deref().is_some_and(|o| o != NODE_LOSS) {
        return;
    }

    let scan = SyntheticScanBuilder::new(10, 8, 12)
        .scatterers(5)
        .background(12.0)
        .noise(2.0)
        .seed(23)
        .build()
        .unwrap();
    let scan_path = tmp("nl_scan").with_extension("mh5");
    write_scan(
        &scan_path,
        &scan.geometry,
        &scan.images,
        Some(&scan.truth),
        3,
    )
    .unwrap();
    let scan_s = scan_path.to_string_lossy().to_string();

    // Single-row slabs so the victim dies with launches still owed: 8 rows
    // band 3/3/2 across three nodes, the fault arms after node 0's first
    // launch, and its remaining rows re-band onto nodes 1 and 2.
    let argv_for = |out: &str, jdir: &str| {
        sv(&[
            "reconstruct",
            "--input",
            &scan_s,
            "--engine",
            "gpu-cluster:3x1",
            "--bins",
            "200",
            "--rows-per-slab",
            "1",
            "--journal-dir",
            jdir,
            "--integrity",
            "verify",
            "--fault-device",
            "0",
            "--out",
            out,
        ])
    };

    let clean_out = tmp("nl_clean").with_extension("mh5");
    let clean_jdir = tmp("nl_clean_jrn");
    let _ = std::fs::remove_dir_all(&clean_jdir);
    let argv = argv_for(&clean_out.to_string_lossy(), &clean_jdir.to_string_lossy());
    cli::run(&cli::parse(&argv).unwrap(), &mut Vec::new()).unwrap();
    let clean = read_image(&clean_out);
    std::fs::remove_file(&clean_out).ok();
    let _ = std::fs::remove_dir_all(&clean_jdir);

    let out_path = tmp("nl_out").with_extension("mh5");
    let jdir = tmp("nl_jrn");
    let _ = std::fs::remove_dir_all(&jdir);
    let mut argv = argv_for(&out_path.to_string_lossy(), &jdir.to_string_lossy());
    argv.extend(sv(&["--inject-gpu-fault", "seed=5,dead-after-launches=1"]));
    let cmd = cli::parse(&argv).unwrap();
    let mut buf = Vec::new();
    cli::run(&cmd, &mut buf).unwrap_or_else(|e| panic!("node-loss run must survive: {e}"));
    let summary = String::from_utf8(buf).unwrap();

    let data = read_image(&out_path);
    assert_eq!(data.len(), clean.len(), "node-loss: dims changed");
    for (i, (a, b)) in data.iter().zip(&clean).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "node-loss: SILENT MISMATCH at voxel {i}: {a} vs {b}"
        );
    }
    assert!(
        summary.contains("DEGRADED: 1 node(s) lost mid-run"),
        "node-loss: the fault never fired or the report hides it:\n{summary}"
    );
    assert_eq!(
        std::fs::read_dir(&jdir).map(|d| d.count()).unwrap_or(0),
        0,
        "node-loss: journal left behind"
    );

    let dir = report_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut rpt = std::fs::File::create(dir.join("node-loss_gpu-cluster-3x1_verify.txt")).unwrap();
    writeln!(rpt, "spec: seed=5,dead-after-launches=1 (--fault-device 0)").unwrap();
    writeln!(rpt, "engine: gpu-cluster:3x1  integrity: verify").unwrap();
    writeln!(
        rpt,
        "status: PASS (DEGRADED, survivors re-banded, bit-identical)"
    )
    .unwrap();
    writeln!(rpt, "--- run summary ---\n{summary}").unwrap();

    std::fs::remove_file(&out_path).ok();
    std::fs::remove_dir_all(&jdir).ok();
    std::fs::remove_file(&scan_path).ok();
}
