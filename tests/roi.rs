//! Region-of-interest reconstruction: cropping the detector and the source
//! must reproduce exactly the corresponding sub-block of the full
//! reconstruction, on every engine.

use laue::prelude::*;
use laue::sim::Device;

fn scan() -> SyntheticScan {
    SyntheticScanBuilder::new(10, 12, 14)
        .scatterers(20)
        .noise(0.5)
        .background(15.0)
        .seed(77)
        .build()
        .unwrap()
}

fn cfg() -> ReconstructionConfig {
    ReconstructionConfig::new(-2000.0, 2000.0, 120)
}

#[test]
fn roi_reconstruction_is_a_subblock_of_the_full_one() {
    let s = scan();
    let cfg = cfg();
    let (r0, c0, nr, nc) = (3usize, 4usize, 5usize, 6usize);

    // Full reconstruction.
    let view = ScanView::new(&s.images, 14, 10, 12).unwrap();
    let full = cpu::reconstruct_seq(&view, &s.geometry, &cfg).unwrap();

    // ROI reconstruction: cropped geometry + ROI source.
    let roi_geom = s.geometry.crop(r0, c0, nr, nc).unwrap();
    let inner = InMemorySlabSource::new(s.images.clone(), 14, 10, 12).unwrap();
    let mut roi_src = laue::core::input::RoiSlabSource::new(inner, r0, c0, nr, nc).unwrap();

    // CPU streaming over the ROI.
    let roi_cpu = cpu::reconstruct_streaming(&mut roi_src, &roi_geom, &cfg, 2).unwrap();
    for bin in 0..cfg.n_depth_bins {
        for r in 0..nr {
            for c in 0..nc {
                assert_eq!(
                    roi_cpu.image.at(bin, r, c),
                    full.image.at(bin, r0 + r, c0 + c),
                    "bin {bin}, pixel ({r}, {c})"
                );
            }
        }
    }

    // GPU over the ROI.
    let inner = InMemorySlabSource::new(s.images.clone(), 14, 10, 12).unwrap();
    let mut roi_src = laue::core::input::RoiSlabSource::new(inner, r0, c0, nr, nc).unwrap();
    let device = Device::new(DeviceProps::tiny(8 * 1024 * 1024));
    let roi_gpu = gpu::reconstruct(&device, &mut roi_src, &roi_geom, &cfg, Layout::Flat1d).unwrap();
    assert_eq!(
        roi_gpu.image.data, roi_cpu.image.data,
        "GPU ROI matches CPU ROI"
    );
}

#[test]
fn full_frame_roi_is_the_identity() {
    let s = scan();
    let cfg = cfg();
    let view = ScanView::new(&s.images, 14, 10, 12).unwrap();
    let full = cpu::reconstruct_seq(&view, &s.geometry, &cfg).unwrap();

    let roi_geom = s.geometry.crop(0, 0, 10, 12).unwrap();
    let inner = InMemorySlabSource::new(s.images.clone(), 14, 10, 12).unwrap();
    let mut roi_src = laue::core::input::RoiSlabSource::new(inner, 0, 0, 10, 12).unwrap();
    let roi = cpu::reconstruct_streaming(&mut roi_src, &roi_geom, &cfg, 4).unwrap();
    assert_eq!(roi.image.data, full.image.data);
    assert_eq!(roi.stats, full.stats);
}

#[test]
fn roi_runs_cost_proportionally_less() {
    // The point of ROIs: a quarter of the pixels costs a quarter of the work.
    let s = scan();
    let cfg = cfg();
    let view = ScanView::new(&s.images, 14, 10, 12).unwrap();
    let full = cpu::reconstruct_seq(&view, &s.geometry, &cfg).unwrap();

    let roi_geom = s.geometry.crop(0, 0, 5, 6).unwrap();
    let inner = InMemorySlabSource::new(s.images.clone(), 14, 10, 12).unwrap();
    let mut roi_src = laue::core::input::RoiSlabSource::new(inner, 0, 0, 5, 6).unwrap();
    let roi = cpu::reconstruct_streaming(&mut roi_src, &roi_geom, &cfg, 5).unwrap();
    assert_eq!(roi.stats.pairs_total * 4, full.stats.pairs_total);
    assert!(roi.cost.flops < full.cost.flops / 3);
}
