//! Cross-crate integration: generator → mh5 container → pipeline engines →
//! export, including failure injection along the way.

use laue::pipeline::export;
use laue::prelude::*;
use laue::sim::DeviceProps;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("laue_e2e_{}_{name}.mh5", std::process::id()))
}

fn make_scan(seed: u64) -> SyntheticScan {
    SyntheticScanBuilder::new(12, 12, 16)
        .scatterers(8)
        .background(12.0)
        .seed(seed)
        .build()
        .unwrap()
}

fn cfg() -> ReconstructionConfig {
    ReconstructionConfig::new(-1800.0, 1800.0, 300)
}

#[test]
fn file_based_engines_all_agree_and_recover_truth() {
    let scan = make_scan(1);
    let path = tmp("agree");
    write_scan(&path, &scan.geometry, &scan.images, Some(&scan.truth), 3).unwrap();

    let pipeline = Pipeline::default();
    let engines = [
        Engine::CpuSeq,
        Engine::CpuThreaded { threads: 2 },
        Engine::Gpu {
            layout: Layout::Flat1d,
        },
        Engine::Gpu {
            layout: Layout::Pointer3d,
        },
        Engine::GpuTables,
        Engine::GpuPipelined,
    ];
    let cfg = cfg();
    let reports: Vec<RunReport> = engines
        .iter()
        .map(|&e| pipeline.run_scan_file(&path, &cfg, e).unwrap())
        .collect();
    for r in &reports[1..] {
        assert_eq!(reports[0].image.data, r.image.data, "{} differs", r.engine);
    }

    // Ground truth recovery through the whole file round trip.
    let scan_file = read_scan(&path).unwrap();
    let truth = scan_file.truth().unwrap();
    let tol = 2.0 * scan.geometry.wire.step.norm() + 2.0 * cfg.bin_width();
    let mut recovered = 0;
    for s in &truth.scatterers {
        if let Some(p) = reports[0].image.pixel_peak_depth(s.row, s.col, &cfg) {
            if (p - s.depth).abs() <= tol {
                recovered += 1;
            }
        }
    }
    assert!(
        recovered * 10 >= truth.len() * 8,
        "recovered only {recovered}/{}",
        truth.len()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn memory_capped_device_streams_and_matches_unconstrained() {
    let scan = make_scan(2);
    let path = tmp("capped");
    write_scan(&path, &scan.geometry, &scan.images, None, 2).unwrap();
    let cfg = cfg();

    let roomy = Pipeline::default();
    let r_roomy = roomy
        .run_scan_file(
            &path,
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        )
        .unwrap();

    let capped = Pipeline {
        device: DeviceProps::tiny(128 * 1024),
        ..Pipeline::default()
    };
    let r_capped = capped
        .run_scan_file(
            &path,
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        )
        .unwrap();

    assert!(
        r_capped.n_slabs > r_roomy.n_slabs,
        "cap must force more slabs"
    );
    assert_eq!(
        r_capped.image.data, r_roomy.image.data,
        "chunking must not change results"
    );
    assert!(
        r_capped.comm_time_s > r_roomy.comm_time_s,
        "more slabs, more per-transfer latency"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_export_chain_round_trips() {
    let scan = make_scan(3);
    let in_path = tmp("export_in");
    let out_path = tmp("export_out");
    write_scan(&in_path, &scan.geometry, &scan.images, None, 4).unwrap();
    let cfg = cfg();
    let pipeline = Pipeline::default();
    let report = pipeline
        .run_scan_file(&in_path, &cfg, Engine::CpuSeq)
        .unwrap();
    export::write_mh5(&out_path, &report, &cfg).unwrap();

    // The exported container is a valid mh5 file with the right data.
    let f = laue::container::FileReader::open(&out_path).unwrap();
    let ds = f.resolve_path("/reconstruction/depth_image").unwrap();
    let data: Vec<f64> = f.read_all(ds).unwrap();
    assert_eq!(data, report.image.data);
    let g = f.resolve_path("/reconstruction").unwrap();
    assert_eq!(
        f.attr(g, "n_depth_bins").unwrap().unwrap().as_int(),
        Some(cfg.n_depth_bins as i64)
    );

    // Text exports parse and conserve totals.
    let mut hist = Vec::new();
    export::write_histogram_text(&mut hist, &report.image, &cfg).unwrap();
    let total: f64 = String::from_utf8(hist)
        .unwrap()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(|l| l.split_whitespace().nth(1).unwrap().parse::<f64>().unwrap())
        .sum();
    assert!((total - report.image.total_intensity()).abs() < 1e-6);

    std::fs::remove_file(&in_path).ok();
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn corrupt_scan_file_fails_cleanly_through_the_pipeline() {
    let scan = make_scan(4);
    let path = tmp("corrupt");
    write_scan(&path, &scan.geometry, &scan.images, None, 2).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 20] ^= 0xFF; // metadata corruption → CRC mismatch
    std::fs::write(&path, &bytes).unwrap();
    let pipeline = Pipeline::default();
    let err = pipeline
        .run_scan_file(&path, &cfg(), Engine::CpuSeq)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("corrupt") || msg.contains("mh5"),
        "unexpected error text: {msg}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_scan_file_fails_cleanly() {
    let scan = make_scan(5);
    let path = tmp("truncated");
    write_scan(&path, &scan.geometry, &scan.images, None, 2).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let pipeline = Pipeline::default();
    assert!(pipeline
        .run_scan_file(&path, &cfg(), Engine::CpuSeq)
        .is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn geometry_mismatch_detected_at_run_time() {
    // A scan file whose images dataset disagrees with its stored geometry
    // is rejected when opened.
    let scan = make_scan(6);
    let path = tmp("mismatch");
    // Write with a *different* geometry than the images were made for:
    let other = ScanGeometry::demo(10, 12, 16, -40.0, 5.0).unwrap();
    assert!(laue::wire::write_scan(&path, &other, &scan.images, None, 2).is_err());
}

#[test]
fn prelude_quickstart_flow_works() {
    // The exact flow from the crate-level docs.
    let scan = SyntheticScanBuilder::new(8, 8, 16)
        .scatterers(3)
        .seed(1)
        .build()
        .unwrap();
    let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 300);
    let pipeline = Pipeline::default();
    let mut source = InMemorySlabSource::new(scan.images.clone(), 16, 8, 8).unwrap();
    let report = pipeline
        .run_source(
            &mut source,
            &scan.geometry,
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        )
        .unwrap();
    let s = &scan.truth.scatterers[0];
    let peak = report.image.pixel_peak_depth(s.row, s.col, &cfg).unwrap();
    assert!((peak - s.depth).abs() < 25.0);
}
