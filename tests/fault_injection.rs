//! Fault injection end-to-end: scripted device faults flow from the CLI /
//! `Pipeline` configuration through `cuda-sim` into the GPU engines, which
//! either recover in place (slab re-planning, transfer retries) or degrade
//! to the CPU engine under `GpuFailurePolicy::FallbackCpu` — and in every
//! recovered case the output matches the fault-free run.

use laue::pipeline::cli;
use laue::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("laue_fault_{}_{name}.mh5", std::process::id()))
}

fn write_demo_scan(name: &str) -> PathBuf {
    let scan = SyntheticScanBuilder::new(12, 10, 14)
        .scatterers(6)
        .background(15.0)
        .seed(11)
        .build()
        .unwrap();
    let path = tmp(name);
    write_scan(&path, &scan.geometry, &scan.images, Some(&scan.truth), 3).unwrap();
    path
}

fn cfg() -> ReconstructionConfig {
    ReconstructionConfig::new(-1600.0, 1600.0, 200)
}

const GPU: Engine = Engine::Gpu {
    layout: Layout::Flat1d,
};

#[test]
fn oom_on_first_slab_allocation_replans_and_matches() {
    // The acceptance scenario: fail the first allocation of slab data (the
    // allocation right after the wire table) and the run must still complete
    // with output identical to the clean run.
    let path = write_demo_scan("oom");
    let clean = Pipeline::default()
        .run_scan_file(&path, &cfg(), GPU)
        .unwrap();
    assert_eq!(clean.gpu_replans, 0);

    let p = Pipeline {
        fault_plan: Some(FaultPlan::new(0).fail_nth_alloc(2)),
        ..Pipeline::default()
    };
    let r = p.run_scan_file(&path, &cfg(), GPU).unwrap();
    assert!(r.gpu_replans >= 1, "OOM must force a re-plan");
    assert!(r.fallback.is_none(), "re-planning is not a degradation");
    assert_eq!(r.image.data, clean.image.data, "recovery must be invisible");
    assert_eq!(r.stats, clean.stats);
    assert!(r.summary().contains("re-plan"), "{}", r.summary());
    std::fs::remove_file(&path).ok();
}

#[test]
fn transient_transfer_faults_retry_and_match() {
    let path = write_demo_scan("retry");
    let clean = Pipeline::default()
        .run_scan_file(&path, &cfg(), GPU)
        .unwrap();

    let p = Pipeline {
        fault_plan: Some(FaultPlan::new(42).fail_nth_h2d(2).fail_nth_d2h(1)),
        ..Pipeline::default()
    };
    let r = p.run_scan_file(&path, &cfg(), GPU).unwrap();
    assert!(
        r.gpu_transfer_retries >= 2,
        "both scripted faults must retry"
    );
    assert!(r.fallback.is_none());
    assert_eq!(r.image.data, clean.image.data);
    assert_eq!(r.stats, clean.stats);
    // Retries cost virtual bus time and backoff, never correctness.
    assert!(r.total_time_s > clean.total_time_s);
    std::fs::remove_file(&path).ok();
}

#[test]
fn dead_device_falls_back_to_cpu_within_tolerance() {
    let path = write_demo_scan("dead");
    let cfg = cfg();
    let cpu = Pipeline::default()
        .run_scan_file(&path, &cfg, Engine::CpuSeq)
        .unwrap();

    let p = Pipeline {
        fault_plan: Some(FaultPlan::new(9).fail_after(5)),
        on_gpu_failure: GpuFailurePolicy::FallbackCpu,
        ..Pipeline::default()
    };
    let r = p.run_scan_file(&path, &cfg, GPU).unwrap();
    let note = r
        .fallback
        .as_deref()
        .expect("report records the degradation");
    assert!(
        note.contains("gpu-1d") && note.contains("cpu-seq"),
        "{note}"
    );
    assert!(r.summary().contains("DEGRADED"), "{}", r.summary());
    for (a, b) in r.image.data.iter().zip(&cpu.image.data) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
            "fallback output diverges: {a} vs {b}"
        );
    }
    assert_eq!(r.stats, cpu.stats);
    std::fs::remove_file(&path).ok();
}

#[test]
fn abort_policy_surfaces_the_device_loss() {
    let path = write_demo_scan("abort");
    let p = Pipeline {
        fault_plan: Some(FaultPlan::new(9).fail_after(5)),
        ..Pipeline::default() // on_gpu_failure: Abort
    };
    let err = p.run_scan_file(&path, &cfg(), GPU).unwrap_err();
    assert!(err.to_string().contains("device lost"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn capacity_lie_plans_more_slabs_but_same_answer() {
    let path = write_demo_scan("capacity");
    let clean = Pipeline::default()
        .run_scan_file(&path, &cfg(), GPU)
        .unwrap();

    // Lie that only 64 KiB are free: the planner sizes slabs to the lie up
    // front, so there is nothing to re-plan — just more, smaller slabs.
    let p = Pipeline {
        fault_plan: Some(FaultPlan::new(0).report_mem_bytes(64 * 1024)),
        ..Pipeline::default()
    };
    let r = p.run_scan_file(&path, &cfg(), GPU).unwrap();
    assert!(
        r.n_slabs > clean.n_slabs,
        "{} vs {}",
        r.n_slabs,
        clean.n_slabs
    );
    assert!(r.rows_per_slab < clean.rows_per_slab);
    assert_eq!(r.gpu_replans, 0, "planning small is not re-planning");
    assert_eq!(r.image.data, clean.image.data);
    std::fs::remove_file(&path).ok();
}

#[test]
fn fallback_matches_executor_threading() {
    // A threaded pipeline degrades to the threaded CPU engine.
    let path = write_demo_scan("threaded");
    let p = Pipeline {
        exec_mode: ExecMode::Threaded(3),
        fault_plan: Some(FaultPlan::new(1).fail_after(3)),
        on_gpu_failure: GpuFailurePolicy::FallbackCpu,
        ..Pipeline::default()
    };
    let r = p.run_scan_file(&path, &cfg(), GPU).unwrap();
    assert!(
        r.fallback.as_deref().unwrap().contains("cpu-threaded(3)"),
        "{:?}",
        r.fallback
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn cli_runs_the_whole_degradation_story() {
    let scan_path = write_demo_scan("cli");
    let scan_s = scan_path.to_string_lossy().to_string();
    let sv = |args: &[&str]| -> Vec<String> { args.iter().map(|s| s.to_string()).collect() };

    // Injected hard failure + abort policy → the command errors.
    let cmd = cli::parse(&sv(&[
        "reconstruct",
        "--input",
        &scan_s,
        "--engine",
        "gpu-1d",
        "--bins",
        "200",
        "--inject-gpu-fault",
        "seed=9,dead-after=5",
    ]))
    .unwrap();
    assert!(cli::run(&cmd, &mut Vec::new()).is_err());

    // Same fault with --on-gpu-failure fallback-cpu → completes, DEGRADED.
    let cmd = cli::parse(&sv(&[
        "reconstruct",
        "--input",
        &scan_s,
        "--engine",
        "gpu-1d",
        "--bins",
        "200",
        "--inject-gpu-fault",
        "seed=9,dead-after=5",
        "--on-gpu-failure",
        "fallback-cpu",
    ]))
    .unwrap();
    let mut buf = Vec::new();
    cli::run(&cmd, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("DEGRADED"), "{text}");
    assert!(text.contains("cpu-seq"), "{text}");

    // A recoverable fault needs no policy: the summary shows the recovery.
    let cmd = cli::parse(&sv(&[
        "reconstruct",
        "--input",
        &scan_s,
        "--engine",
        "gpu-1d",
        "--bins",
        "200",
        "--inject-gpu-fault",
        "alloc-nth=2,h2d-nth=3",
    ]))
    .unwrap();
    let mut buf = Vec::new();
    cli::run(&cmd, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("re-plan"), "{text}");
    assert!(text.contains("transfer retry"), "{text}");
    assert!(!text.contains("DEGRADED"), "{text}");

    std::fs::remove_file(&scan_path).ok();
}
