//! Property tests for the extension modules: post-processing, multi-GPU,
//! planning, and the depth-table engine.

use laue::prelude::*;
use laue::sim::Device;
use proptest::prelude::*;

// ----------------------------------------------------------------------
// post-processing
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Smoothing never moves values outside the input's [min, max] hull and
    /// is the identity for sigma = 0.
    #[test]
    fn smoothing_respects_hull(
        profile in proptest::collection::vec(-50.0..500.0f64, 4..64),
        sigma in 0.0..4.0f64,
    ) {
        let s = laue::core::post::smooth_profile(&profile, sigma);
        prop_assert_eq!(s.len(), profile.len());
        let lo = profile.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = profile.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in &s {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
        }
        if sigma == 0.0 {
            prop_assert_eq!(s, profile);
        }
    }

    /// Every peak found is a genuine local maximum above threshold, and the
    /// global maximum (when above threshold) is always found first.
    #[test]
    fn peaks_are_local_maxima(
        profile in proptest::collection::vec(0.0..100.0f64, 3..48),
        threshold in 0.0..60.0f64,
    ) {
        let cfg = ReconstructionConfig::new(0.0, profile.len() as f64, profile.len());
        let peaks = laue::core::post::find_peaks(&profile, &cfg, threshold);
        for p in &peaks {
            prop_assert!(p.height > threshold);
            let i = p.bin;
            if i > 0 {
                prop_assert!(profile[i - 1] < profile[i] + 1e-12);
            }
            if i + 1 < profile.len() {
                prop_assert!(profile[i + 1] <= profile[i]);
            }
        }
        let global = profile.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if global > threshold {
            prop_assert!(!peaks.is_empty(), "global max {global} above threshold must be found");
            prop_assert!((peaks[0].height - global).abs() < 1e-12);
        }
        // Sorted by height.
        for w in peaks.windows(2) {
            prop_assert!(w[0].height >= w[1].height);
        }
    }

    /// The depth map returns the global-maximum bin of each profile when no
    /// smoothing is applied.
    #[test]
    fn depth_map_matches_argmax(
        values in proptest::collection::vec(0.0..100.0f64, 12),
    ) {
        let cfg = ReconstructionConfig::new(0.0, 120.0, 12);
        let mut img = DepthImage::zeroed(12, 1, 1);
        for (b, v) in values.iter().enumerate() {
            *img.at_mut(b, 0, 0) = *v;
        }
        let map = depth_map(&img, &cfg, &DepthMapOptions { smoothing_sigma: 0.0, min_height: 0.0 });
        let best = values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        match map[0] {
            Some(d) => {
                let bin = ((d - cfg.depth_start) / cfg.bin_width()) as usize;
                prop_assert!((values[bin] - best).abs() < 1e-12);
            }
            None => prop_assert!(best <= 0.0, "no peak only when profile is non-positive"),
        }
    }
}

// ----------------------------------------------------------------------
// multi-GPU and engine equivalences over random scenarios
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Scenario {
    rows: usize,
    cols: usize,
    steps: usize,
    seed: u64,
    n_dev: usize,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (3usize..=6, 3usize..=6, 4usize..=8, any::<u64>(), 1usize..=4).prop_map(
        |(rows, cols, steps, seed, n_dev)| Scenario {
            rows,
            cols,
            steps,
            seed,
            n_dev,
        },
    )
}

/// One random silent-corruption schedule: which fault family fires, at
/// which scheduled ordinal, and which checking mode must catch it.
#[derive(Debug, Clone)]
struct CorruptionCase {
    seed: u64,
    family: u8,
    nth: u64,
    byte: u64,
    op: u64,
    scrub: bool,
    fleet: bool,
    compaction: CompactionMode,
    accumulation: AccumulationMode,
}

impl CorruptionCase {
    fn fault_plan(&self) -> FaultPlan {
        let plan = FaultPlan::new(self.seed);
        match self.family {
            0 => plan.flip_nth_h2d(self.nth).flip_byte_offset(self.byte),
            1 => plan.flip_nth_d2h(self.nth).flip_byte_offset(self.byte),
            2 => plan.flip_nth_kernel(self.nth).flip_op_index(self.op),
            _ => plan.stall_nth_kernel(self.nth, 3.0),
        }
    }
}

fn arb_corruption() -> impl Strategy<Value = CorruptionCase> {
    (
        any::<u64>(),
        0u8..4,
        1u64..=5,
        0u64..32,
        0u64..4,
        any::<bool>(),
        any::<bool>(),
        (
            prop_oneof![
                Just(CompactionMode::Off),
                Just(CompactionMode::Auto),
                Just(CompactionMode::On)
            ],
            prop_oneof![
                Just(AccumulationMode::Atomic),
                Just(AccumulationMode::Privatized),
                Just(AccumulationMode::Auto)
            ],
        ),
    )
        .prop_map(
            |(seed, family, nth, byte, op, scrub, fleet, (compaction, accumulation))| {
                CorruptionCase {
                    seed,
                    family,
                    nth,
                    byte,
                    op,
                    scrub,
                    fleet,
                    compaction,
                    accumulation,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multi-GPU banding and the depth-table engine both reproduce the CPU
    /// result bit-for-bit on arbitrary scans.
    #[test]
    fn all_engines_bitwise_equal(s in arb_scenario()) {
        let scan = SyntheticScanBuilder::new(s.rows, s.cols, s.steps)
            .scatterers(3)
            .noise(0.5)
            .seed(s.seed)
            .build()
            .unwrap();
        let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 50);
        let view = ScanView::new(&scan.images, s.steps, s.rows, s.cols).unwrap();
        let cpu_out = cpu::reconstruct_seq(&view, &scan.geometry, &cfg).unwrap();

        // Multi-GPU.
        let devices: Vec<Device> = (0..s.n_dev)
            .map(|_| Device::new(DeviceProps::tiny(8 * 1024 * 1024)))
            .collect();
        let refs: Vec<&Device> = devices.iter().collect();
        let mut source =
            InMemorySlabSource::new(scan.images.clone(), s.steps, s.rows, s.cols).unwrap();
        let multi = reconstruct_multi(&refs, &mut source, &scan.geometry, &cfg, GpuOptions::default())
            .unwrap();
        prop_assert_eq!(&multi.image.data, &cpu_out.image.data);
        prop_assert_eq!(multi.stats, cpu_out.stats);

        // Depth-table engine.
        let device = Device::new(DeviceProps::tiny(8 * 1024 * 1024));
        let mut source =
            InMemorySlabSource::new(scan.images.clone(), s.steps, s.rows, s.cols).unwrap();
        let tables = gpu::reconstruct_with_options(
            &device,
            &mut source,
            &scan.geometry,
            &cfg,
            GpuOptions { layout: Layout::Flat1d, triangulation: Triangulation::HostTables, ..GpuOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(&tables.image.data, &cpu_out.image.data);
    }

    /// The sparsity pass (shadow culling + active-pair compaction) is
    /// bit-identical to the dense traversal on arbitrary scans, at every
    /// realised density, for every engine.
    #[test]
    fn compaction_is_bitwise_across_engines_and_densities(
        s in arb_scenario(),
        cutoff_fraction in 0.0..0.95f64,
    ) {
        let scan = SyntheticScanBuilder::new(s.rows, s.cols, s.steps)
            .scatterers(3)
            .noise(0.5)
            .seed(s.seed)
            .build()
            .unwrap();
        // A cutoff at an arbitrary |ΔI| percentile sweeps the realised
        // active density across the whole range.
        let (p, m, n) = (s.steps, s.rows, s.cols);
        let mut deltas: Vec<f64> = Vec::new();
        for z in 0..p - 1 {
            for px in 0..m * n {
                deltas.push(
                    (scan.images[z * m * n + px] - scan.images[(z + 1) * m * n + px]).abs(),
                );
            }
        }
        deltas.sort_by(f64::total_cmp);
        let cutoff = deltas[(deltas.len() as f64 * cutoff_fraction) as usize];

        let mut dense_cfg = ReconstructionConfig::new(-1500.0, 1500.0, 50);
        dense_cfg.intensity_cutoff = cutoff;
        let view = ScanView::new(&scan.images, p, m, n).unwrap();
        let reference = cpu::reconstruct_seq(&view, &scan.geometry, &dense_cfg).unwrap();

        for mode in [CompactionMode::Auto, CompactionMode::On] {
            let mut cfg = dense_cfg.clone();
            cfg.compaction = mode;

            let seq = cpu::reconstruct_seq(&view, &scan.geometry, &cfg).unwrap();
            prop_assert_eq!(&seq.image.data, &reference.image.data);

            let thr = cpu::reconstruct_threaded(&view, &scan.geometry, &cfg, 2).unwrap();
            prop_assert_eq!(&thr.image.data, &reference.image.data);

            for triangulation in [Triangulation::InKernel, Triangulation::HostTables] {
                let device = Device::new(DeviceProps::tiny(8 * 1024 * 1024));
                let mut source =
                    InMemorySlabSource::new(scan.images.clone(), p, m, n).unwrap();
                let out = gpu::reconstruct_with_options(
                    &device,
                    &mut source,
                    &scan.geometry,
                    &cfg,
                    GpuOptions { layout: Layout::Flat1d, triangulation, ..GpuOptions::default() },
                )
                .unwrap();
                prop_assert_eq!(&out.image.data, &reference.image.data);
            }

            let devices: Vec<Device> = (0..s.n_dev)
                .map(|_| Device::new(DeviceProps::tiny(8 * 1024 * 1024)))
                .collect();
            let refs: Vec<&Device> = devices.iter().collect();
            let mut source =
                InMemorySlabSource::new(scan.images.clone(), p, m, n).unwrap();
            let multi =
                reconstruct_multi(&refs, &mut source, &scan.geometry, &cfg, GpuOptions::default())
                    .unwrap();
            prop_assert_eq!(&multi.image.data, &reference.image.data);
        }
    }

    /// The shared-tile privatized accumulator (and the `auto` planner) are
    /// bit-identical to the paper's CAS atomic path on every engine,
    /// composed with compaction at arbitrary realised densities and with
    /// both device layouts — and differ from the atomic run in nothing but
    /// the accumulation attribution counters.
    #[test]
    fn accumulation_is_bitwise_across_engines_and_layouts(
        s in arb_scenario(),
        cutoff_fraction in 0.0..0.9f64,
    ) {
        let scan = SyntheticScanBuilder::new(s.rows, s.cols, s.steps)
            .scatterers(3)
            .noise(0.5)
            .seed(s.seed)
            .build()
            .unwrap();
        let (p, m, n) = (s.steps, s.rows, s.cols);
        let mut deltas: Vec<f64> = Vec::new();
        for z in 0..p - 1 {
            for px in 0..m * n {
                deltas.push(
                    (scan.images[z * m * n + px] - scan.images[(z + 1) * m * n + px]).abs(),
                );
            }
        }
        deltas.sort_by(f64::total_cmp);

        let mut base = ReconstructionConfig::new(-1500.0, 1500.0, 50);
        base.intensity_cutoff = deltas[(deltas.len() as f64 * cutoff_fraction) as usize];
        let view = ScanView::new(&scan.images, p, m, n).unwrap();
        let reference = cpu::reconstruct_seq(&view, &scan.geometry, &base).unwrap();

        for compaction in [CompactionMode::Off, CompactionMode::On] {
            for (layout, triangulation) in [
                (Layout::Flat1d, Triangulation::InKernel),
                (Layout::Pointer3d, Triangulation::InKernel),
                (Layout::Flat1d, Triangulation::HostTables),
            ] {
                let run = |accumulation| {
                    let mut cfg = base.clone();
                    cfg.compaction = compaction;
                    cfg.accumulation = accumulation;
                    let device = Device::new(DeviceProps::tiny(8 * 1024 * 1024));
                    let mut source =
                        InMemorySlabSource::new(scan.images.clone(), p, m, n).unwrap();
                    gpu::reconstruct_with_options(
                        &device,
                        &mut source,
                        &scan.geometry,
                        &cfg,
                        GpuOptions { layout, triangulation, ..GpuOptions::default() },
                    )
                    .unwrap()
                };
                let atomic = run(AccumulationMode::Atomic);
                prop_assert_eq!(&atomic.image.data, &reference.image.data);
                for accumulation in [AccumulationMode::Privatized, AccumulationMode::Auto] {
                    let out = run(accumulation);
                    prop_assert_eq!(
                        &out.image.data,
                        &reference.image.data,
                        "{:?}/{:?}/{:?}/{:?}",
                        accumulation,
                        compaction,
                        layout,
                        triangulation
                    );
                    // A 50-bin tile row always fits tiny's 8 KiB of shared
                    // memory, so nothing ever falls back…
                    prop_assert_eq!(out.stats.accum_fallback_pairs, 0);
                    if accumulation == AccumulationMode::Privatized {
                        // …and the explicit mode privatizes every slab. The
                        // `auto` planner is free to keep slabs atomic when
                        // the cost model prices that cheaper, so only the
                        // explicit mode pins the attribution.
                        prop_assert_eq!(out.stats.privatized_pairs, out.stats.pairs_total);
                    }
                    // Apart from the attribution nothing moves.
                    let mut neutral = out.stats;
                    neutral.privatized_pairs = 0;
                    prop_assert_eq!(neutral, atomic.stats);
                    prop_assert!(out.stats.is_consistent());
                }
            }

            // Multi-GPU banding: each band resolves its own plan; the
            // merged attribution still covers every pair.
            let mut cfg = base.clone();
            cfg.compaction = compaction;
            cfg.accumulation = AccumulationMode::Privatized;
            let devices: Vec<Device> = (0..s.n_dev)
                .map(|_| Device::new(DeviceProps::tiny(8 * 1024 * 1024)))
                .collect();
            let refs: Vec<&Device> = devices.iter().collect();
            let mut source =
                InMemorySlabSource::new(scan.images.clone(), p, m, n).unwrap();
            let multi =
                reconstruct_multi(&refs, &mut source, &scan.geometry, &cfg, GpuOptions::default())
                    .unwrap();
            prop_assert_eq!(&multi.image.data, &reference.image.data);
            prop_assert_eq!(multi.stats.privatized_pairs, multi.stats.pairs_total);
            prop_assert_eq!(multi.stats.accum_fallback_pairs, 0);
        }
    }

    /// `--plan auto` always selects a configuration that exists: rerunning
    /// the chosen plan as a fixed configuration reproduces the auto run's
    /// image bit-for-bit on arbitrary scans and densities.
    #[test]
    fn plan_auto_matches_its_chosen_fixed_config_bitwise(
        s in arb_scenario(),
        cutoff_fraction in 0.0..0.9f64,
    ) {
        let scan = SyntheticScanBuilder::new(s.rows, s.cols, s.steps)
            .scatterers(3)
            .noise(0.5)
            .seed(s.seed)
            .build()
            .unwrap();
        let (p, m, n) = (s.steps, s.rows, s.cols);
        let mut deltas: Vec<f64> = Vec::new();
        for z in 0..p - 1 {
            for px in 0..m * n {
                deltas.push(
                    (scan.images[z * m * n + px] - scan.images[(z + 1) * m * n + px]).abs(),
                );
            }
        }
        deltas.sort_by(f64::total_cmp);

        let mut cfg = ReconstructionConfig::new(-1500.0, 1500.0, 50);
        cfg.intensity_cutoff = deltas[(deltas.len() as f64 * cutoff_fraction) as usize];
        cfg.plan = PlanMode::Auto;
        let mut source = InMemorySlabSource::new(scan.images.clone(), p, m, n).unwrap();
        let auto = Pipeline::default()
            .run_source(&mut source, &scan.geometry, &cfg, Engine::GpuPipelined)
            .unwrap();
        let explain = auto.plan.as_ref().expect("plan auto explain block");
        prop_assert!(explain.candidates.iter().any(|(l, _)| l == &explain.chosen));

        // The label encodes the whole plan: layout/tables/k<depth>/r<rows>.
        let parts: Vec<&str> = explain.chosen.split('/').collect();
        prop_assert_eq!(parts.len(), 4);
        let depth: usize = parts[2][1..].parse().unwrap();
        let rows: usize = parts[3][1..].parse().unwrap();
        let mut fixed = cfg.clone();
        fixed.plan = PlanMode::Fixed;
        fixed.compaction = CompactionMode::Auto;
        fixed.accumulation = AccumulationMode::Auto;
        fixed.pipeline_depth = Some(depth);
        fixed.rows_per_slab = Some(rows);
        let engine = match (parts[0], parts[1]) {
            ("flat1d", "inkernel") => Some(Engine::Gpu { layout: Layout::Flat1d }),
            ("ptr3d", "inkernel") => Some(Engine::Gpu { layout: Layout::Pointer3d }),
            ("flat1d", "tables") => Some(Engine::GpuTables),
            _ => None,
        };
        let mut source = InMemorySlabSource::new(scan.images.clone(), p, m, n).unwrap();
        let fixed_image = match engine {
            Some(e) => {
                Pipeline::default()
                    .run_source(&mut source, &scan.geometry, &fixed, e)
                    .unwrap()
                    .image
                    .data
            }
            None => {
                // ptr3d + host tables has no Engine shorthand; run the core
                // engine with the same options on the same device model.
                let device = Device::new(DeviceProps::tesla_m2070());
                gpu::reconstruct_with_options(
                    &device,
                    &mut source,
                    &scan.geometry,
                    &fixed,
                    GpuOptions {
                        layout: Layout::Pointer3d,
                        triangulation: Triangulation::HostTables,
                        ..GpuOptions::default()
                    },
                )
                .unwrap()
                .image
                .data
            }
        };
        prop_assert_eq!(&auto.image.data, &fixed_image);
    }

    /// Rebinning conserves intensity for arbitrary images and bin counts.
    #[test]
    fn rebin_conserves_mass(
        values in proptest::collection::vec(0.0..100.0f64, 24),
        new_bins in 1usize..40,
    ) {
        let cfg = ReconstructionConfig::new(-60.0, 60.0, 24);
        let mut img = DepthImage::zeroed(24, 1, 1);
        for (b, v) in values.iter().enumerate() {
            *img.at_mut(b, 0, 0) = *v;
        }
        let (out, new_cfg) = laue::core::post::rebin(&img, &cfg, new_bins);
        let total: f64 = values.iter().sum();
        prop_assert!((out.total_intensity() - total).abs() <= 1e-9 * (1.0 + total));
        prop_assert_eq!(out.n_bins, new_bins);
        prop_assert_eq!(new_cfg.n_depth_bins, new_bins);
        // Round-tripping back to the original axis also conserves.
        let (back, _) = laue::core::post::rebin(&out, &new_cfg, 24);
        prop_assert!((back.total_intensity() - total).abs() <= 1e-9 * (1.0 + total));
    }

    /// Wire calibration recovers random scan-direction shifts from clean
    /// transition observations.
    #[test]
    fn calibration_recovers_random_shifts(shift in -25.0..25.0f64) {
        use laue::core::calibrate::{calibrate_wire_origin, transitions_from_stack};
        let nominal = ScanGeometry::demo(6, 6, 40, -70.0, 4.0).unwrap();
        let step_dir = nominal.wire.step.normalized().unwrap();
        let true_geom = ScanGeometry {
            beam: nominal.beam,
            wire: WireGeometry::new(
                nominal.wire.axis,
                nominal.wire.radius,
                nominal.wire.origin + step_dir * shift,
                nominal.wire.step,
                nominal.wire.n_steps,
            )
            .unwrap(),
            detector: nominal.detector.clone(),
        };
        // Sources at mid-sweep of a few pixels, rendered with the TRUE wire.
        let mapper_nom = nominal.mapper().unwrap();
        let mapper_true = true_geom.mapper().unwrap();
        let mut pixels = Vec::new();
        for &(r, c) in &[(1usize, 1usize), (4, 4), (2, 5)] {
            let (lo, hi) =
                laue::core::planning::sweep_window(&nominal, &mapper_nom, r, c).unwrap();
            pixels.push((r, c, (lo + hi) / 2.0));
        }
        let (p, m, n) = (40, 6, 6);
        let mut stack = vec![5.0f64; p * m * n];
        for &(r, c, d) in &pixels {
            let px = true_geom.detector.pixel_to_xyz(r, c).unwrap();
            for z in 0..p {
                if !mapper_true.occludes(d, px, true_geom.wire.center(z).unwrap()) {
                    stack[(z * m + r) * n + c] += 300.0;
                }
            }
        }
        let view = ScanView::new(&stack, p, m, n).unwrap();
        let obs = transitions_from_stack(&view, &pixels);
        prop_assume!(obs.len() == pixels.len()); // shift must keep all transitions in-scan
        let cal = calibrate_wire_origin(&nominal, &obs, 40.0, 6).unwrap();
        // Observed steps quantise to ±0.5 step ⇒ ±2 µm of wire travel.
        prop_assert!(
            (cal.offset_along_scan - shift).abs() <= 2.5,
            "fitted {} vs true {shift}",
            cal.offset_along_scan
        );
    }

    /// Under an arbitrary silent-corruption schedule, a checking run
    /// either completes bit-identical to the fault-free reference or
    /// aborts with a detected integrity violation — never a silent
    /// mismatch. And a fault that actually fired is always detected:
    /// checked transfers catch the flips in flight, the ABFT depth-sum
    /// check (exact in the default sequential exec mode) catches the
    /// kernel flip, and the watchdog catches the stall.
    #[test]
    fn integrity_never_admits_a_silent_mismatch(
        s in arb_scenario(),
        c in arb_corruption(),
    ) {
        let scan = SyntheticScanBuilder::new(s.rows, s.cols, s.steps)
            .scatterers(3)
            .noise(0.5)
            .seed(s.seed)
            .build()
            .unwrap();
        let mut cfg = ReconstructionConfig::new(-1500.0, 1500.0, 50);
        // Several slabs per run, so the scheduled ordinals have launches
        // and transfers to land on.
        cfg.rows_per_slab = Some(2);
        cfg.compaction = c.compaction;
        cfg.accumulation = c.accumulation;
        let engine = if c.fleet {
            Engine::GpuMulti { devices: 2 }
        } else {
            Engine::GpuPipelined
        };

        let mut source =
            InMemorySlabSource::new(scan.images.clone(), s.steps, s.rows, s.cols).unwrap();
        let reference = Pipeline::default()
            .run_source(&mut source, &scan.geometry, &cfg, engine)
            .unwrap();

        cfg.integrity = if c.scrub { IntegrityMode::Scrub } else { IntegrityMode::Verify };
        let p = Pipeline {
            fault_plan: Some(c.fault_plan()),
            ..Pipeline::default()
        };
        let mut source =
            InMemorySlabSource::new(scan.images.clone(), s.steps, s.rows, s.cols).unwrap();
        match p.run_source(&mut source, &scan.geometry, &cfg, engine) {
            Ok(r) => {
                // The one forbidden outcome is completing with different
                // data — everything below is bitwise.
                prop_assert_eq!(&r.image.data, &reference.image.data, "silent mismatch: {:?}", c);
                let silent = r.faults_injected.map_or(0, |f| f.total_silent());
                if silent > 0 {
                    prop_assert!(
                        r.integrity.corruptions_detected > 0,
                        "{silent} silent fault(s) fired undetected: {:?}",
                        c
                    );
                }
                prop_assert_eq!(
                    r.integrity.corruptions_corrected,
                    r.integrity.corruptions_detected
                );
            }
            Err(e) => {
                // Only verify is allowed to abort, and only on a
                // *detected* violation; scrub must always repair.
                let msg = e.to_string();
                prop_assert!(!c.scrub, "scrub failed to repair: {msg} ({:?})", c);
                prop_assert!(msg.contains("integrity"), "undiagnosed abort: {msg} ({:?})", c);
            }
        }
    }

    /// The planner always produces a runnable scan that covers its target
    /// whenever it claims success.
    #[test]
    fn planner_delivers_what_it_promises(
        lo in -60.0..40.0f64,
        len in 10.0..60.0f64,
        res in 1.0..8.0f64,
    ) {
        let base = ScanGeometry::demo(9, 9, 16, -40.0, 8.0).unwrap();
        match plan_scan(&base, lo, lo + len, res) {
            Err(_) => {} // out of the valid window — allowed
            Ok(plan) => {
                prop_assert!(plan.resolution <= res + 1e-6);
                prop_assert!(plan.sweep.0 <= lo + 1e-6);
                prop_assert!(plan.sweep.1 >= lo + len - 1e-6);
                // Runnable geometry.
                let g = ScanGeometry {
                    beam: base.beam,
                    wire: plan.wire.clone(),
                    detector: base.detector.clone(),
                };
                prop_assert!(g.mapper().is_ok());
                prop_assert!(plan.wire.n_steps >= 2);
            }
        }
    }
}
