//! Checkpoint / resume / failover end-to-end: a journalled run killed at
//! any slab boundary resumes bit-identically; a multi-GPU fleet that loses
//! a device mid-run finishes on the survivors without touching the CPU;
//! and the CPU fallback salvages every GPU-committed slab instead of
//! recomputing the whole frame.

use laue::pipeline::cli;
use laue::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("laue_resume_{}_{name}", std::process::id()))
}

fn write_demo_scan(name: &str) -> PathBuf {
    let scan = SyntheticScanBuilder::new(12, 10, 14)
        .scatterers(6)
        .background(15.0)
        .seed(11)
        .build()
        .unwrap();
    let path = tmp(name).with_extension("mh5");
    write_scan(&path, &scan.geometry, &scan.images, Some(&scan.truth), 3).unwrap();
    path
}

/// 12 rows in 2-row slabs: six slab boundaries to kill at.
fn cfg() -> ReconstructionConfig {
    let mut cfg = ReconstructionConfig::new(-1600.0, 1600.0, 200);
    cfg.rows_per_slab = Some(2);
    cfg
}

/// The serial engine commits each slab before launching the next, so
/// `fail_after_launches(i)` leaves exactly `i` slabs in the journal.
const GPU: Engine = Engine::Gpu {
    layout: Layout::Flat1d,
};

#[test]
fn resume_is_bit_identical_at_every_slab_boundary() {
    let path = write_demo_scan("boundary");
    let cfg = cfg();
    let baseline = Pipeline::default().run_scan_file(&path, &cfg, GPU).unwrap();
    assert_eq!(baseline.n_slabs, 6);

    let jdir = tmp("boundary_jrn");
    for boundary in 0..baseline.n_slabs {
        let _ = std::fs::remove_dir_all(&jdir);

        // Kill the device at this slab boundary; the abort policy surfaces
        // the loss and the journal keeps everything committed so far.
        let dying = Pipeline {
            fault_plan: Some(FaultPlan::new(0).fail_after_launches(boundary as u64)),
            journal_dir: Some(jdir.clone()),
            ..Pipeline::default()
        };
        let err = dying.run_scan_file(&path, &cfg, GPU).unwrap_err();
        assert!(err.to_string().contains("device lost"), "{err}");
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

        // A fresh process with --resume replays the journal and recomputes
        // only the tail — bit-identical to the uninterrupted run.
        let resumed = Pipeline {
            journal_dir: Some(jdir.clone()),
            resume: true,
            ..Pipeline::default()
        };
        let r = resumed.run_scan_file(&path, &cfg, GPU).unwrap();
        assert_eq!(r.image.data, baseline.image.data, "boundary {boundary}");
        assert_eq!(r.stats, baseline.stats, "boundary {boundary}");
        match r.recovery.resume.as_ref() {
            Some(info) => assert_eq!(info.slabs_replayed, boundary),
            None => assert_eq!(boundary, 0, "non-empty journals record provenance"),
        }
        // The completed run retires its journal: resuming is idempotent.
        assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 0);
    }

    std::fs::remove_dir_all(&jdir).ok();
    std::fs::remove_file(&path).ok();
}

/// The serve-layer preemption contract, exercised at its foundation: a
/// quantum-bounded run stopped at *every* slab boundary carries its
/// [`SlabProgress`] checkpoint to a different device on a **different
/// chassis** (fresh PCIe bus, fresh host CPU) and finishes bit-identical
/// to an uninterrupted single-device run. Migration is resume; if the
/// checkpoint were device- or chassis-flavored in any way, this catches it.
#[test]
fn preemption_resumes_on_a_foreign_chassis_at_every_slab_boundary() {
    let scan = SyntheticScanBuilder::new(12, 10, 14)
        .scatterers(6)
        .background(15.0)
        .seed(11)
        .build()
        .unwrap();
    let cfg = cfg();
    let source = || InMemorySlabSource::new(scan.images.clone(), 14, 12, 10).unwrap();

    let baseline = gpu::reconstruct_with_options(
        &Device::new(DeviceProps::tesla_m2070()),
        &mut source(),
        &scan.geometry,
        &cfg,
        GpuOptions::default(),
    )
    .unwrap();

    // Preempt after `boundary` committed slabs (2 rows each), resume the
    // tail on a device that shares nothing with the first.
    for boundary in 1..6 {
        let mut progress = SlabProgress::new(cfg.n_depth_bins, 12, 10);
        let chassis_a = laue::sim::Host::new_default();
        let dev_a = Device::new_on_host(DeviceProps::tesla_m2070(), &chassis_a);
        let (_, complete) = gpu::reconstruct_checkpointed_bounded(
            &dev_a,
            &mut source(),
            &scan.geometry,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::default(),
            None,
            &mut progress,
            None,
            2 * boundary,
        )
        .unwrap();
        assert!(!complete, "boundary {boundary} must leave a tail");
        assert_eq!(progress.committed_rows(), 2 * boundary);

        let chassis_b = laue::sim::Host::new_default();
        let dev_b = Device::new_on_host(DeviceProps::tesla_m2070(), &chassis_b);
        let (out, complete) = gpu::reconstruct_checkpointed_bounded(
            &dev_b,
            &mut source(),
            &scan.geometry,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::default(),
            None,
            &mut progress,
            None,
            usize::MAX,
        )
        .unwrap();
        assert!(complete, "boundary {boundary} tail must finish");
        assert_eq!(
            out.image.data, baseline.image.data,
            "migrated resume at boundary {boundary} changed the bits"
        );
        assert_eq!(out.stats, baseline.stats, "boundary {boundary} stats");
    }

    // The worst case: a new device on a new chassis for every quantum —
    // the job tours six machines and still lands on the same bits.
    let mut progress = SlabProgress::new(cfg.n_depth_bins, 12, 10);
    let mut last = None;
    for hop in 0..6 {
        let chassis = laue::sim::Host::new_default();
        let dev = Device::new_on_host(DeviceProps::tesla_m2070(), &chassis);
        let (out, complete) = gpu::reconstruct_checkpointed_bounded(
            &dev,
            &mut source(),
            &scan.geometry,
            &cfg,
            GpuOptions::default(),
            PipelineDepth::default(),
            None,
            &mut progress,
            None,
            2,
        )
        .unwrap();
        assert_eq!(complete, hop == 5, "six 2-row quanta cover 12 rows");
        last = Some(out);
    }
    let toured = last.unwrap();
    assert_eq!(toured.image.data, baseline.image.data);
    assert_eq!(toured.stats, baseline.stats);
}

#[test]
fn fleet_losing_any_one_device_completes_on_survivors() {
    let path = write_demo_scan("failover");
    let cfg = cfg();
    let fleet = Engine::GpuMulti { devices: 4 };
    let clean = Pipeline::default()
        .run_scan_file(&path, &cfg, fleet)
        .unwrap();
    assert_eq!(clean.engine, "gpu-multi(4)");
    assert_eq!(clean.recovery.devices_lost, 0);

    for victim in 0..4 {
        let p = Pipeline {
            fault_plan: Some(FaultPlan::new(0).fail_after_launches(1)),
            fault_device: Some(victim),
            ..Pipeline::default()
        };
        let r = p.run_scan_file(&path, &cfg, fleet).unwrap();
        assert_eq!(r.recovery.devices_lost, 1, "victim {victim}");
        assert!(
            r.fallback.is_none(),
            "survivors absorb the rows, no CPU fallback (victim {victim})"
        );
        assert_eq!(r.recovery.recomputed_slabs, 0, "victim {victim}");
        assert_eq!(r.image.data, clean.image.data, "victim {victim}");
        assert_eq!(r.stats, clean.stats, "victim {victim}");
        assert!(r.summary().contains("device(s) lost"), "{}", r.summary());
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn losing_every_device_salvages_committed_slabs_on_the_cpu() {
    let path = write_demo_scan("all_dead");
    // Force the serial ring so each device commits its first slab before
    // the fatal second launch (the default 3-deep ring would lose the
    // in-flight slab with the device).
    let mut cfg = cfg();
    cfg.pipeline_depth = Some(1);
    let cpu = Pipeline::default()
        .run_scan_file(&path, &cfg, Engine::CpuSeq)
        .unwrap();

    let p = Pipeline {
        fault_plan: Some(FaultPlan::new(0).fail_after_launches(1)),
        on_gpu_failure: GpuFailurePolicy::FallbackCpu,
        ..Pipeline::default()
    };
    let r = p
        .run_scan_file(&path, &cfg, Engine::GpuMulti { devices: 4 })
        .unwrap();
    assert_eq!(r.recovery.devices_lost, 4);
    assert!(
        r.recovery.salvaged_slabs >= 1,
        "each device committed a slab before dying: {:?}",
        r.recovery
    );
    assert!(r.recovery.recomputed_slabs >= 1, "{:?}", r.recovery);
    assert!(r.fallback.as_deref().unwrap().contains("gpu-multi(4)"));
    assert_eq!(r.image.data, cpu.image.data);
    assert_eq!(r.stats, cpu.stats);
    assert!(r.summary().contains("DEGRADED"), "{}", r.summary());
    assert!(r.summary().contains("salvage:"), "{}", r.summary());

    std::fs::remove_file(&path).ok();
}

#[test]
fn interrupted_fleet_run_resumes_on_a_healthy_fleet() {
    let path = write_demo_scan("fleet_resume");
    let mut cfg = cfg();
    cfg.pipeline_depth = Some(1);
    let fleet = Engine::GpuMulti { devices: 4 };
    let baseline = Pipeline::default()
        .run_scan_file(&path, &cfg, fleet)
        .unwrap();

    let jdir = tmp("fleet_jrn");
    let _ = std::fs::remove_dir_all(&jdir);
    let dying = Pipeline {
        fault_plan: Some(FaultPlan::new(0).fail_after_launches(1)),
        journal_dir: Some(jdir.clone()),
        ..Pipeline::default()
    };
    assert!(dying.run_scan_file(&path, &cfg, fleet).is_err());

    let resumed = Pipeline {
        journal_dir: Some(jdir.clone()),
        resume: true,
        ..Pipeline::default()
    };
    let r = resumed.run_scan_file(&path, &cfg, fleet).unwrap();
    assert_eq!(r.image.data, baseline.image.data);
    assert_eq!(r.stats, baseline.stats);
    let info = r.recovery.resume.as_ref().expect("resume provenance");
    assert!(info.slabs_replayed >= 1);
    assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 0);

    std::fs::remove_dir_all(&jdir).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn journal_of_a_different_run_is_ignored() {
    let path = write_demo_scan("keyed");
    let jdir = tmp("keyed_jrn");
    let _ = std::fs::remove_dir_all(&jdir);
    let cfg = cfg();

    // Interrupt a 200-bin run...
    let dying = Pipeline {
        fault_plan: Some(FaultPlan::new(0).fail_after_launches(3)),
        journal_dir: Some(jdir.clone()),
        ..Pipeline::default()
    };
    assert!(dying
        .run_scan_file(&path, &cfg, GPU)
        .unwrap_err() // journal stays
        .to_string()
        .contains("device lost"));

    // ...then resume with a different config: the key differs, so nothing
    // is replayed and the run is a correct fresh start.
    let mut other = cfg.clone();
    other.n_depth_bins = 150;
    let fresh = Pipeline::default()
        .run_scan_file(&path, &other, GPU)
        .unwrap();
    let resumed = Pipeline {
        journal_dir: Some(jdir.clone()),
        resume: true,
        ..Pipeline::default()
    };
    let r = resumed.run_scan_file(&path, &other, GPU).unwrap();
    assert!(
        r.recovery.resume.is_none(),
        "mismatched key must not replay"
    );
    assert_eq!(r.image.data, fresh.image.data);
    // The 200-bin journal is still there for its own resume.
    assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

    std::fs::remove_dir_all(&jdir).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn cli_checkpoint_resume_round_trip() {
    let scan_path = write_demo_scan("cli");
    let scan_s = scan_path.to_string_lossy().to_string();
    let jdir = tmp("cli_jrn");
    let _ = std::fs::remove_dir_all(&jdir);
    let jdir_s = jdir.to_string_lossy().to_string();
    let sv = |args: &[&str]| -> Vec<String> { args.iter().map(|s| s.to_string()).collect() };
    let base = [
        "reconstruct",
        "--input",
        &scan_s,
        "--engine",
        "gpu-1d",
        "--bins",
        "200",
        "--rows-per-slab",
        "2",
        "--journal-dir",
        &jdir_s,
    ];

    // Interrupted run: scripted device death, default abort policy.
    let mut argv = sv(&base);
    argv.extend(sv(&["--inject-gpu-fault", "dead-after-launches=2"]));
    let cmd = cli::parse(&argv).unwrap();
    assert!(cli::run(&cmd, &mut Vec::new()).is_err());
    assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 1);

    // `--resume` finishes the job and says where it picked up.
    let mut argv = sv(&base);
    argv.push("--resume".into());
    let cmd = cli::parse(&argv).unwrap();
    let mut buf = Vec::new();
    cli::run(&cmd, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("resumed from journal"), "{text}");
    assert!(text.contains("2 slab(s) replayed"), "{text}");
    assert_eq!(std::fs::read_dir(&jdir).unwrap().count(), 0);

    // `--resume` without `--journal-dir` is rejected at parse time.
    let err = cli::parse(&sv(&["reconstruct", "--input", &scan_s, "--resume"])).unwrap_err();
    assert!(err.contains("--journal-dir"), "{err}");

    // The fleet engine parses and runs from the CLI too.
    let cmd = cli::parse(&sv(&[
        "reconstruct",
        "--input",
        &scan_s,
        "--engine",
        "gpu-multi:3",
        "--bins",
        "200",
    ]))
    .unwrap();
    let mut buf = Vec::new();
    cli::run(&cmd, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("gpu-multi(3)"), "{text}");
    assert!(cli::parse(&sv(&[
        "reconstruct",
        "--input",
        &scan_s,
        "--engine",
        "gpu-multi:0"
    ]))
    .is_err());

    std::fs::remove_dir_all(&jdir).ok();
    std::fs::remove_file(&scan_path).ok();
}
