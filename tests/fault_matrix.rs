//! The CI fault matrix: every scripted `FaultPlan` family runs end-to-end
//! through the CLI with a journal and `--on-gpu-failure fallback-cpu`, and
//! each run's recovery story (summary text + deviation from the clean run)
//! is written as a report file. CI fans the specs out with
//! `LAUE_FAULT_SPEC` and uploads the report directory as an artifact.
//!
//! * `LAUE_FAULT_SPEC`  — run one named spec (unset: run all of them).
//! * `LAUE_REPORT_DIR`  — report directory (default `target/fault-reports`).

use laue::pipeline::cli;
use laue::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

/// Name → `--inject-gpu-fault` schedule. One entry per fault family the
/// simulator can script.
const SPECS: &[(&str, &str)] = &[
    ("alloc-oom", "alloc-nth=2"),
    ("h2d-transient", "seed=42,h2d-nth=2"),
    ("d2h-transient", "seed=42,d2h-nth=1"),
    ("capacity-lie", "free-mem=65536"),
    ("dead-after-ops", "seed=9,dead-after=5"),
    ("dead-at-first-boundary", "dead-after-launches=1"),
    ("dead-mid-run", "dead-after-launches=3"),
    ("flaky-bus", "seed=7,h2d-prob=0.4,d2h-prob=0.2"),
];

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("laue_matrix_{}_{name}", std::process::id()))
}

fn report_dir() -> PathBuf {
    std::env::var("LAUE_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/fault-reports"))
}

fn sv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

/// Run one spec through the CLI (journal + CPU fallback), compare its
/// output against the fault-free run, and write `<name>.txt` in the
/// report directory.
fn run_spec(name: &str, spec: &str, scan_s: &str, clean: &[f64]) {
    let jdir = tmp(&format!("{name}_jrn"));
    let _ = std::fs::remove_dir_all(&jdir);
    let out_path = tmp(&format!("{name}_out")).with_extension("mh5");
    let argv = sv(&[
        "reconstruct",
        "--input",
        scan_s,
        "--engine",
        "gpu-1d",
        "--bins",
        "200",
        "--rows-per-slab",
        "2",
        "--journal-dir",
        &jdir.to_string_lossy(),
        "--on-gpu-failure",
        "fallback-cpu",
        "--inject-gpu-fault",
        spec,
        "--out",
        &out_path.to_string_lossy(),
    ]);
    let cmd = cli::parse(&argv).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    let mut buf = Vec::new();
    cli::run(&cmd, &mut buf).unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
    let summary = String::from_utf8(buf).unwrap();

    // The exported image must match the fault-free run to float tolerance
    // (bitwise for in-place recoveries; the CPU fallback may re-order
    // depositions).
    let f = laue::container::FileReader::open(&out_path)
        .unwrap_or_else(|e| panic!("{name}: no output written: {e}"));
    let ds = f.resolve_path("/reconstruction/depth_image").unwrap();
    let data: Vec<f64> = f.read_all(ds).unwrap();
    assert_eq!(data.len(), clean.len(), "{name}: dims changed");
    let mut max_rel = 0.0f64;
    for (a, b) in data.iter().zip(clean) {
        let rel = (a - b).abs() / (1.0 + b.abs());
        assert!(rel <= 1e-9, "{name}: output diverges ({a} vs {b})");
        max_rel = max_rel.max(rel);
    }
    // A finished run always retires its journal, degraded or not.
    assert_eq!(
        std::fs::read_dir(&jdir).map(|d| d.count()).unwrap_or(0),
        0,
        "{name}: journal left behind"
    );

    let dir = report_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut rpt = std::fs::File::create(dir.join(format!("{name}.txt"))).unwrap();
    writeln!(rpt, "spec: {spec}").unwrap();
    writeln!(rpt, "status: PASS (max relative deviation {max_rel:.3e})").unwrap();
    writeln!(rpt, "--- run summary ---\n{summary}").unwrap();

    std::fs::remove_file(&out_path).ok();
    std::fs::remove_dir_all(&jdir).ok();
}

#[test]
fn fault_matrix_recovers_every_scripted_fault() {
    let scan = SyntheticScanBuilder::new(12, 10, 14)
        .scatterers(6)
        .background(15.0)
        .seed(11)
        .build()
        .unwrap();
    let scan_path = tmp("scan").with_extension("mh5");
    write_scan(
        &scan_path,
        &scan.geometry,
        &scan.images,
        Some(&scan.truth),
        3,
    )
    .unwrap();
    let scan_s = scan_path.to_string_lossy().to_string();

    // Fault-free reference through the same CLI path.
    let clean_out = tmp("clean_out").with_extension("mh5");
    let cmd = cli::parse(&sv(&[
        "reconstruct",
        "--input",
        &scan_s,
        "--engine",
        "gpu-1d",
        "--bins",
        "200",
        "--rows-per-slab",
        "2",
        "--out",
        &clean_out.to_string_lossy(),
    ]))
    .unwrap();
    cli::run(&cmd, &mut Vec::new()).unwrap();
    let f = laue::container::FileReader::open(&clean_out).unwrap();
    let ds = f.resolve_path("/reconstruction/depth_image").unwrap();
    let clean: Vec<f64> = f.read_all(ds).unwrap();
    drop(f);
    std::fs::remove_file(&clean_out).ok();

    let only = std::env::var("LAUE_FAULT_SPEC").ok();
    if let Some(name) = &only {
        assert!(
            SPECS.iter().any(|(n, _)| n == name),
            "unknown LAUE_FAULT_SPEC {name:?}; known: {:?}",
            SPECS.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
    }
    for (name, spec) in SPECS {
        if only.as_deref().is_none_or(|o| o == *name) {
            run_spec(name, spec, &scan_s, &clean);
        }
    }

    std::fs::remove_file(&scan_path).ok();
}
