//! Integration: the k-deep ring pipeline against the sequential CPU
//! baseline — including recovery from injected device faults mid-flight.

use laue::prelude::*;

fn make_scan() -> SyntheticScan {
    SyntheticScanBuilder::new(16, 16, 12)
        .scatterers(10)
        .background(8.0)
        .noise(0.5)
        .seed(77)
        .build()
        .unwrap()
}

fn cfg() -> ReconstructionConfig {
    let mut c = ReconstructionConfig::new(-1600.0, 1600.0, 200);
    c.rows_per_slab = Some(2); // 8 slabs: plenty of in-flight overlap
    c
}

fn cpu_baseline(scan: &SyntheticScan, c: &ReconstructionConfig) -> DepthImage {
    let view = ScanView::new(&scan.images, 12, 16, 16).unwrap();
    cpu::reconstruct_seq(&view, &scan.geometry, c)
        .unwrap()
        .image
}

fn ring_run(
    scan: &SyntheticScan,
    c: &ReconstructionConfig,
    depth: usize,
    plan: Option<FaultPlan>,
) -> laue::core::gpu::GpuReconstruction {
    let device = Device::new(DeviceProps::tesla_m2070());
    if let Some(plan) = plan {
        device.set_fault_plan(plan);
    }
    let mut source = InMemorySlabSource::new(scan.images.clone(), 12, 16, 16).unwrap();
    gpu::reconstruct_pipelined(
        &device,
        &mut source,
        &scan.geometry,
        c,
        GpuOptions::default(),
        PipelineDepth(depth),
        None,
    )
    .unwrap()
}

#[test]
fn ring_depths_are_bit_identical_to_the_cpu_baseline() {
    let scan = make_scan();
    let c = cfg();
    let baseline = cpu_baseline(&scan, &c);
    let mut elapsed = Vec::new();
    for k in [1usize, 2, 4] {
        let out = ring_run(&scan, &c, k, None);
        assert_eq!(out.pipeline_depth, k);
        assert_eq!(
            out.image.data, baseline.data,
            "ring depth {k} diverges from cpu-seq"
        );
        elapsed.push(out.elapsed_s);
    }
    assert!(
        elapsed[1] < elapsed[0],
        "k=2 must overlap transfers: {elapsed:?}"
    );
    assert!(
        elapsed[2] <= elapsed[1] + 1e-12,
        "deeper rings never slow down: {elapsed:?}"
    );
}

#[test]
fn ring_survives_mid_run_oom_by_replanning() {
    let scan = make_scan();
    let c = cfg();
    let baseline = cpu_baseline(&scan, &c);
    // Flat1d allocs: wires (#1), then pixels/intensity/output per slab —
    // alloc #6 lands in the middle of the second slab, with the ring full.
    let out = ring_run(&scan, &c, 3, Some(FaultPlan::new(9).fail_nth_alloc(6)));
    assert!(
        out.recovery.replans >= 1,
        "the ring must have re-planned, got {:?}",
        out.recovery
    );
    assert_eq!(out.image.data, baseline.data, "replanned output diverges");
}

#[test]
fn ring_retries_transient_transfer_faults() {
    let scan = make_scan();
    let c = cfg();
    let baseline = cpu_baseline(&scan, &c);
    let out = ring_run(&scan, &c, 4, Some(FaultPlan::new(5).fail_nth_h2d(3)));
    assert!(
        out.recovery.transfer_retries >= 1,
        "the transfer fault must have been retried, got {:?}",
        out.recovery
    );
    assert_eq!(
        out.recovery.replans, 0,
        "a transient fault needs no re-plan"
    );
    assert_eq!(out.image.data, baseline.data, "retried output diverges");
}
