//! Beamline maintenance workflow: calibrate the wire position from a scan
//! of a known sample, then show what the miscalibration would have done to
//! the science.
//!
//! Run with: `cargo run --release --example wire_calibration`

use laue::core::calibrate::{calibrate_wire_origin, transitions_from_stack};
use laue::prelude::*;

fn main() {
    // The geometry the control system *believes* (nominal).
    let nominal = ScanGeometry::demo(8, 8, 48, -80.0, 4.0).expect("geometry");

    // The wire is actually 15 µm further downstream than believed —
    // a realistic day-one misalignment after a wire change.
    let true_wire = WireGeometry::new(
        nominal.wire.axis,
        nominal.wire.radius,
        nominal.wire.origin + Vec3::new(0.0, 0.0, 15.0),
        nominal.wire.step,
        nominal.wire.n_steps,
    )
    .expect("wire");
    let true_geom = ScanGeometry {
        beam: nominal.beam,
        wire: true_wire,
        detector: nominal.detector.clone(),
    };

    // Calibration sample: bright sources of known depth at a handful of
    // pixels (mid-sweep so the wire crosses each one during the scan).
    let mapper = nominal.mapper().expect("mapper");
    let mut pixels = Vec::new();
    for &(r, c) in &[(1usize, 1usize), (1, 6), (4, 4), (6, 2), (6, 6), (3, 5)] {
        let info = pixel_scan_info(&nominal, &mapper, r, c).expect("info");
        pixels.push((r, c, (info.sweep.0 + info.sweep.1) / 2.0));
    }

    // "Run" the calibration scan with the *true* (shifted) wire.
    let true_mapper = true_geom.mapper().expect("mapper");
    let (p, m, n) = (48, 8, 8);
    let mut stack = vec![10.0f64; p * m * n];
    for &(r, c, d) in &pixels {
        let px = true_geom.detector.pixel_to_xyz(r, c).unwrap();
        for z in 0..p {
            if !true_mapper.occludes(d, px, true_geom.wire.center(z).unwrap()) {
                stack[(z * m + r) * n + c] += 400.0;
            }
        }
    }
    let view = ScanView::new(&stack, p, m, n).expect("view");
    let observations = transitions_from_stack(&view, &pixels);
    println!(
        "extracted {} occlusion transitions from the calibration scan",
        observations.len()
    );

    // Fit.
    let cal = calibrate_wire_origin(&nominal, &observations, 50.0, 6).expect("fit");
    println!(
        "fitted wire offset: {:.2} µm along the scan direction (truth: 15 µm), \
         residual {:.3} steps",
        cal.offset_along_scan, cal.rms_steps
    );

    // What the miscalibration costs: reconstruct one source with the
    // nominal vs the calibrated geometry and compare recovered depths.
    let (r, c, d_true) = pixels[2];
    let cfg = ReconstructionConfig::new(-1500.0, 1500.0, 750);
    let recon = |geom: &ScanGeometry| -> f64 {
        let out = cpu::reconstruct_seq(&view, geom, &cfg).expect("reconstruct");
        out.image.pixel_peak_depth(r, c, &cfg).expect("peak")
    };
    let depth_nominal = recon(&nominal);
    let depth_calibrated = recon(&cal.geometry);
    println!("\nsource at pixel ({r}, {c}), true depth {d_true:.1} µm:");
    println!(
        "  reconstructed with nominal geometry   : {depth_nominal:.1} µm  (error {:+.1})",
        depth_nominal - d_true
    );
    println!(
        "  reconstructed with calibrated geometry: {depth_calibrated:.1} µm  (error {:+.1})",
        depth_calibrated - d_true
    );
    println!(
        "\na {:.0} µm wire error became a {:.0} µm depth error — calibration \
         recovered it.",
        cal.offset_along_scan,
        (depth_nominal - d_true).abs()
    );
}
