//! The paper's Fig 4 design experiment in miniature: reconstruct one scan
//! with the flat 1-D device layout and with the pointer-table 3-D layout,
//! and show where the time goes.
//!
//! Run with: `cargo run --release --example layout_comparison`

use laue::prelude::*;

fn main() {
    let scan = SyntheticScanBuilder::new(24, 24, 32)
        .scatterers(15)
        .noise(0.5)
        .background(12.0)
        .seed(99)
        .build()
        .expect("scan");
    let cfg = ReconstructionConfig::new(-2200.0, 2200.0, 400);
    let pipeline = Pipeline::default();

    println!("layout     total(ms)   compute(ms)   transfer(ms)   transfers");
    let mut rows = Vec::new();
    for (name, engine) in [
        (
            "1D flat",
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        ),
        (
            "3D ptrs",
            Engine::Gpu {
                layout: Layout::Pointer3d,
            },
        ),
    ] {
        let mut source = InMemorySlabSource::new(
            scan.images.clone(),
            scan.geometry.wire.n_steps,
            scan.geometry.detector.n_rows,
            scan.geometry.detector.n_cols,
        )
        .expect("source");
        let r = pipeline
            .run_source(&mut source, &scan.geometry, &cfg, engine)
            .expect("run");
        println!(
            "{name:<9}  {:>9.3}   {:>11.3}   {:>12.3}   {:>9}",
            r.total_time_s * 1e3,
            r.compute_time_s * 1e3,
            r.comm_time_s * 1e3,
            r.transfers,
        );
        rows.push((name, r));
    }
    let (a, b) = (&rows[0].1, &rows[1].1);
    assert_eq!(a.image.data, b.image.data, "layouts agree numerically");
    println!(
        "\nthe 3-D pointer layout takes {:.2}× the 1-D layout's time \
         (the paper picks 1-D for exactly this reason)",
        b.total_time_s / a.total_time_s
    );
}
