//! Domain scenario from the paper's introduction: plastic-deformation
//! microstructure under a microindent in a Cu single crystal.
//!
//! The damage zone under an indent scatters strongly near the surface and
//! decays with depth. We synthesize that depth-graded structure, run the
//! wire-scan reconstruction, and print the recovered damage-vs-depth
//! profile — the measurement 34-ID-E makes with this algorithm.
//!
//! Run with: `cargo run --release --example microindent_profile`

use laue::prelude::*;
use laue::wire::forward::{render_stack, RenderOptions};

fn main() {
    // 64 wire steps to cover a deep column of sample. The unambiguous
    // depth window of a wire scan is set by the separation of the two wire
    // edges (structure deeper than that aliases with opposite sign), so a
    // deep damage profile needs a thick wire: 120 µm radius here gives a
    // ≈ 400 µm valid window.
    let detector = DetectorGeometry::overhead(12, 12, 200.0, 30_000.0).expect("detector");
    let wire = WireGeometry::along_x(
        120.0,
        Vec3::new(0.0, 15_000.0, -100.0),
        Vec3::new(0.0, 0.0, 4.0),
        64,
    )
    .expect("wire");
    let geom = ScanGeometry {
        beam: Beam::along_z(),
        wire,
        detector,
    };
    let mapper = geom.mapper().expect("mapper");

    // ------------------------------------------------------------------
    // Build the indent damage field: scatterers at depths 0..250 µm below
    // the (per-pixel) top of the sweep window, with intensity decaying
    // exponentially over 80 µm and laterally over 3 pixels from the
    // indent axis at detector centre.
    // ------------------------------------------------------------------
    let mut plan = SamplePlan::new();
    let (cr, cc) = (5.5f64, 5.5f64);
    for r in 0..12 {
        for c in 0..12 {
            let lateral =
                (((r as f64 - cr).powi(2) + (c as f64 - cc).powi(2)) / (2.0 * 3.0f64 * 3.0)).exp();
            let pixel = geom.detector.pixel_to_xyz(r, c).unwrap();
            let d0 = mapper
                .depth(pixel, geom.wire.center(0).unwrap(), WireEdge::Leading)
                .unwrap();
            let d_last = mapper
                .depth(pixel, geom.wire.center(63).unwrap(), WireEdge::Leading)
                .unwrap();
            let (lo, hi) = (d0.min(d_last), d0.max(d_last));
            let surface = lo + (hi - lo) * 0.15; // "sample surface" for this pixel
            for layer in 0..12 {
                let depth_below_surface = layer as f64 * 20.0;
                let depth = surface + depth_below_surface;
                if depth > hi - (hi - lo) * 0.15 {
                    break;
                }
                let intensity = 400.0 * (-depth_below_surface / 80.0).exp() / lateral;
                if intensity < 2.0 {
                    continue;
                }
                plan.add_point(r, c, depth, intensity).unwrap();
            }
        }
    }
    println!(
        "indent model: {} scatterers, {:.0} total counts",
        plan.len(),
        plan.total_intensity()
    );

    let images = render_stack(
        &geom,
        &plan,
        &RenderOptions {
            background: 8.0,
            noise: 0.5,
            seed: 1,
            ..Default::default()
        },
    )
    .expect("forward model");

    // ------------------------------------------------------------------
    // Reconstruct on the GPU engine and integrate laterally.
    // ------------------------------------------------------------------
    let mut cfg = ReconstructionConfig::new(-2000.0, 2000.0, 400);
    cfg.intensity_cutoff = 3.0;
    let pipeline = Pipeline::default();
    let mut source = InMemorySlabSource::new(images, 64, 12, 12).expect("source");
    let report = pipeline
        .run_source(
            &mut source,
            &geom,
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        )
        .expect("reconstruction");
    println!("{}\n", report.summary());

    // Per-pixel damage profile relative to each pixel's surface: realign by
    // the pixel's surface depth and accumulate.
    let mut aligned = vec![0.0f64; 30]; // 20 µm bins below surface
    for r in 0..12 {
        for c in 0..12 {
            let pixel = geom.detector.pixel_to_xyz(r, c).unwrap();
            let d0 = mapper
                .depth(pixel, geom.wire.center(0).unwrap(), WireEdge::Leading)
                .unwrap();
            let d_last = mapper
                .depth(pixel, geom.wire.center(63).unwrap(), WireEdge::Leading)
                .unwrap();
            let (lo, hi) = (d0.min(d_last), d0.max(d_last));
            let surface = lo + (hi - lo) * 0.15;
            for bin in 0..cfg.n_depth_bins {
                let depth = cfg.bin_center(bin);
                let below = depth - surface;
                if below < 0.0 {
                    continue;
                }
                let k = (below / 20.0) as usize;
                if k < aligned.len() {
                    aligned[k] += report.image.at(bin, r, c);
                }
            }
        }
    }

    println!("depth below surface (µm)   integrated damage signal");
    let max = aligned.iter().cloned().fold(1.0f64, f64::max);
    for (k, v) in aligned.iter().enumerate().take(15) {
        let bar = "█".repeat(((v / max) * 40.0).round() as usize);
        println!("{:>8} – {:<8} {:>12.0}  {bar}", k * 20, (k + 1) * 20, v);
    }
    println!(
        "\nthe signal decays with depth (e-folding ≈ 80 µm in the model) — \
         the depth-graded deformation the paper's intro describes"
    );
}
