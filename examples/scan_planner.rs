//! Instrument-side workflow: plan a wire scan for a target depth range and
//! resolution, simulate running it, and verify the plan delivered.
//!
//! Run with: `cargo run --release --example scan_planner`

use laue::prelude::*;
use laue::wire::forward::{render_stack, RenderOptions};
use laue::wire::plans::layered_sample;

fn main() {
    // Start from the beamline's standing geometry (any configured scan).
    let base = ScanGeometry::demo(9, 9, 16, -40.0, 8.0).expect("geometry");
    let mapper = base.mapper().expect("mapper");
    let info = pixel_scan_info(&base, &mapper, 4, 4).expect("info");
    println!("standing scan at the central pixel:");
    println!(
        "  sweep        : [{:.1}, {:.1}] µm",
        info.sweep.0, info.sweep.1
    );
    println!("  resolution   : {:.2} µm/step", info.resolution);
    println!("  valid window : {:.1} µm\n", info.valid_window);

    // Science goal: a buried layer somewhere in [0, 60] µm, resolved to 3 µm.
    let plan = plan_scan(&base, 0.0, 60.0, 3.0).expect("plan");
    println!("planned scan for [0, 60] µm at ≤3 µm:");
    println!("  steps        : {}", plan.wire.n_steps);
    println!("  step size    : {:.2} µm", plan.wire.step.norm());
    println!("  start at     : {:?}", plan.wire.origin);
    println!("  resolution   : {:.2} µm/step", plan.resolution);
    println!(
        "  sweep        : [{:.1}, {:.1}] µm\n",
        plan.sweep.0, plan.sweep.1
    );

    // "Run" the planned scan against a buried layer and reconstruct.
    let planned = ScanGeometry {
        beam: base.beam,
        wire: plan.wire.clone(),
        detector: base.detector.clone(),
    };
    let sample = layered_sample(&planned, 0.5, 250.0).expect("sample");
    let images = render_stack(
        &planned,
        &sample,
        &RenderOptions {
            background: 12.0,
            noise: 0.5,
            seed: 4,
            ..Default::default()
        },
    )
    .expect("render");
    // The depth window must cover every pixel's sweep, not just the central
    // one (each detector row looks at a different stretch of the beam).
    let pmapper = planned.mapper().expect("mapper");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in 0..9 {
        for c in 0..9 {
            let i = pixel_scan_info(&planned, &pmapper, r, c).expect("info");
            lo = lo.min(i.sweep.0);
            hi = hi.max(i.sweep.1);
        }
    }
    let cfg = ReconstructionConfig::new(lo - 50.0, hi + 50.0, 800);
    let mut source = InMemorySlabSource::new(images, planned.wire.n_steps, 9, 9).expect("source");
    let report = Pipeline::default()
        .run_source(
            &mut source,
            &planned,
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        )
        .expect("reconstruct");
    println!("{}\n", report.summary());

    // Verify the layer depth came back within the planned resolution.
    let truth = &sample.scatterers;
    let tol = plan.resolution + 2.0 * cfg.bin_width();
    let recovered = truth
        .iter()
        .filter(|s| {
            report
                .image
                .pixel_peak_depth(s.row, s.col, &cfg)
                .is_some_and(|p| (p - s.depth).abs() <= tol)
        })
        .count();
    println!(
        "layer recovery: {recovered}/{} pixels within ±{tol:.1} µm — the plan met \
         its resolution target",
        truth.len()
    );
}
