//! Quickstart: synthesize a wire scan, reconstruct it on the CPU baseline
//! and on the simulated-GPU engine, and verify the recovered depths.
//!
//! Run with: `cargo run --release --example quickstart`

use laue::prelude::*;

fn main() {
    // A 16×16-pixel detector, 32 wire steps, 6 scatterers at random depths.
    let scan = SyntheticScanBuilder::new(16, 16, 32)
        .scatterers(6)
        .background(10.0)
        .seed(2024)
        .build()
        .expect("synthetic scan");
    println!(
        "generated scan: {} images of {}×{} pixels, {} ground-truth scatterers",
        scan.geometry.wire.n_steps,
        scan.geometry.detector.n_rows,
        scan.geometry.detector.n_cols,
        scan.truth.len()
    );

    let cfg = ReconstructionConfig::new(-1800.0, 1800.0, 600);
    let pipeline = Pipeline::default();

    for engine in [
        Engine::CpuSeq,
        Engine::Gpu {
            layout: Layout::Flat1d,
        },
    ] {
        let mut source = InMemorySlabSource::new(
            scan.images.clone(),
            scan.geometry.wire.n_steps,
            scan.geometry.detector.n_rows,
            scan.geometry.detector.n_cols,
        )
        .expect("source");
        let report = pipeline
            .run_source(&mut source, &scan.geometry, &cfg, engine)
            .expect("reconstruction");
        println!("\n{}", report.summary());

        println!("  truth depth (µm)   recovered (µm)   error");
        for s in &scan.truth.scatterers {
            match report.image.pixel_peak_depth(s.row, s.col, &cfg) {
                Some(peak) => println!(
                    "  {:>14.1}   {:>14.1}   {:>6.1}",
                    s.depth,
                    peak,
                    (peak - s.depth).abs()
                ),
                None => println!("  {:>14.1}   (no peak)", s.depth),
            }
        }
    }
}
