//! Full beamline-style workflow: generate a scan, write it to an
//! HDF5-style container, stream-reconstruct it through a memory-capped
//! simulated device (forcing the paper's row-slab pipeline), and export the
//! results.
//!
//! Run with: `cargo run --release --example beamline_scan`

use laue::pipeline::export;
use laue::prelude::*;
use laue::sim::DeviceProps;

fn main() {
    let dir = std::env::temp_dir();
    let scan_path = dir.join("laue_example_scan.mh5");
    let out_path = dir.join("laue_example_reconstruction.mh5");

    // ------------------------------------------------------------------
    // 1. Acquire: a 32×32 detector, 24 wire steps, noisy.
    // ------------------------------------------------------------------
    let scan = SyntheticScanBuilder::new(32, 32, 24)
        .scatterers(20)
        .background(15.0)
        .noise(0.8)
        .seed(7)
        .build()
        .expect("scan");
    write_scan(
        &scan_path,
        &scan.geometry,
        &scan.images,
        Some(&scan.truth),
        4,
    )
    .expect("write scan file");
    println!(
        "wrote {} ({} bytes)",
        scan_path.display(),
        std::fs::metadata(&scan_path).map(|m| m.len()).unwrap_or(0)
    );

    // ------------------------------------------------------------------
    // 2. Reconstruct: a deliberately tiny device (256 KiB) so the stack
    //    cannot fit and the engine must stream row slabs (paper Fig 2).
    // ------------------------------------------------------------------
    let mut cfg = ReconstructionConfig::new(-2500.0, 2500.0, 500);
    cfg.intensity_cutoff = 5.0; // suppress pure-noise differentials
    let pipeline = Pipeline {
        device: DeviceProps::tiny(256 * 1024),
        ..Pipeline::default()
    };
    let report = pipeline
        .run_scan_file(
            &scan_path,
            &cfg,
            Engine::Gpu {
                layout: Layout::Flat1d,
            },
        )
        .expect("reconstruction");
    println!("{}", report.summary());
    println!(
        "device slabbing: {} slabs of {} rows (device holds {} KiB)",
        report.n_slabs, report.rows_per_slab, 256
    );

    // ------------------------------------------------------------------
    // 3. Export: container + text histogram.
    // ------------------------------------------------------------------
    export::write_mh5(&out_path, &report, &cfg).expect("export mh5");
    let mut hist = Vec::new();
    export::write_histogram_text(&mut hist, &report.image, &cfg).expect("histogram");
    let text = String::from_utf8(hist).unwrap();
    let peak_line = text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .max_by(|a, b| {
            let va: f64 = a.split_whitespace().nth(1).unwrap().parse().unwrap();
            let vb: f64 = b.split_whitespace().nth(1).unwrap().parse().unwrap();
            va.total_cmp(&vb)
        })
        .unwrap_or("");
    println!("strongest depth bin: {peak_line}");
    println!("wrote {}", out_path.display());

    // ------------------------------------------------------------------
    // 4. Validate against the ground truth stored in the scan file.
    // ------------------------------------------------------------------
    let scan_file = read_scan(&scan_path).expect("reopen");
    let truth = scan_file.truth().expect("truth stored");
    let tol = 2.0 * scan.geometry.wire.step.norm() + 2.0 * cfg.bin_width();
    let recovered = truth
        .scatterers
        .iter()
        .filter(|s| {
            report
                .image
                .pixel_peak_depth(s.row, s.col, &cfg)
                .is_some_and(|p| (p - s.depth).abs() <= tol)
        })
        .count();
    println!(
        "depth recovery: {recovered}/{} scatterers within ±{tol:.1} µm",
        truth.len()
    );

    std::fs::remove_file(&scan_path).ok();
    std::fs::remove_file(&out_path).ok();
}
