//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal API-compatible stand-ins for its external
//! dependencies. This one wraps `std::sync::Mutex` with parking_lot's
//! non-poisoning `lock()` signature.

use std::fmt;
use std::sync::MutexGuard;

/// A mutual-exclusion primitive with parking_lot's panic-tolerant API:
/// `lock()` returns the guard directly, recovering from poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
