//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal API-compatible stand-ins. This crate provides
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen::<f64>()` / `gen_range(..)` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which is unspecified anyway), but fully
//! deterministic for a given seed, which is all the synthetic-scan builders
//! rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from, matching `rand`'s `gen_range` input.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn integer_ranges_hit_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
