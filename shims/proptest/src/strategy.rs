//! Value-generation strategies (non-shrinking).
//!
//! A strategy is anything that can produce a `Debug`-printable value from
//! the deterministic [`TestRng`]. Combinators mirror upstream proptest:
//! `prop_map`, `prop_flat_map`, `boxed`, tuples, `Vec<S>`, ranges, `Just`,
//! and `Union` (behind `prop_oneof!`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A source of generated values.
pub trait Strategy {
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

// ---------------------------------------------------------------------
// Tuples and collections of strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A / 0);
impl_tuple!(A / 0, B / 1);
impl_tuple!(A / 0, B / 1, C / 2);
impl_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// A `Vec` of strategies generates element-wise (one value per entry).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Mixes ordinary magnitudes with whole-domain bit patterns
    /// (subnormals, infinities, NaNs), like upstream's `any::<f64>()`.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.below(4) == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            // Uniform in [-1e6, 1e6) — the "boring but usable" regime.
            (rng.next_f64() - 0.5) * 2.0e6
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        if rng.below(4) == 0 {
            f32::from_bits(rng.next_u64() as u32)
        } else {
            ((rng.next_f64() - 0.5) * 2.0e6) as f32
        }
    }
}

/// Whole-domain strategy for `T` (`any::<u64>()`, …).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Upstream-shaped entry point: `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
