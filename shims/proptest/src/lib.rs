//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal API-compatible stand-ins for its external
//! dependencies. This crate re-implements the proptest surface the test
//! suite relies on — `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert*!`, `prop_assume!`, `Strategy` with `prop_map` /
//! `prop_flat_map` / `boxed`, range and tuple and `collection::vec`
//! strategies, `Just`, and `any::<T>()` — with two deliberate differences
//! from upstream:
//!
//! * **Generation is deterministic**: each test's RNG is seeded from a hash
//!   of the test name, so failures reproduce exactly on re-run with no
//!   persistence machinery.
//! * **No shrinking**: a failing case reports the generated input verbatim
//!   (every strategy value is `Debug`). Committed
//!   `*.proptest-regressions` files are kept for provenance — the seeds in
//!   them are upstream-proptest RNG states this shim cannot replay, so
//!   known regressions are additionally pinned as explicit unit tests.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Fails the current test case unless `$cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `$a == $b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current test case unless `$a != $b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            a
        );
    }};
}

/// Rejects (skips) the current test case unless `$cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniformly choose between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define a named strategy function from component strategies
/// (the upstream `prop_compose!` shape).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:ident in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// The main property-test macro: wraps each `fn` in a deterministic runner.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(&config, stringify!($name), strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}
