//! The deterministic case runner behind the `proptest!` macro.

use std::fmt::Debug;

use crate::strategy::Strategy;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the heavier reconstruction
        // properties fast while still exercising a broad input band.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed — the whole test fails.
    Fail(String),
    /// A `prop_assume!` filtered this input — try another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Execute `config.cases` successful runs of `test` over `strategy`.
///
/// Rejected cases (via `prop_assume!`) are retried with fresh inputs, up to
/// a global cap. On failure the generated input is printed verbatim (this
/// shim does not shrink) and the test panics.
pub fn run<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: S,
    test: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    // PROPTEST_CASES matches upstream's env override.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    let mut rng = TestRng::new(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = cases.saturating_mul(16).max(1024);
    let mut case_index = 0u64;
    while passed < cases {
        case_index += 1;
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected inputs \
                         ({rejected} rejects for {passed}/{cases} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case #{case_index}: {msg}\n\
                     input: {repr}\n\
                     (deterministic shim: re-running reproduces this case)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run(
            &ProptestConfig::with_cases(10),
            "runs_requested_cases",
            0usize..5,
            |v| {
                assert!(v < 5);
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    fn deterministic_per_name() {
        let collect = |name: &str| {
            let out = std::cell::RefCell::new(Vec::new());
            run(&ProptestConfig::with_cases(8), name, 0u64..1000, |v| {
                out.borrow_mut().push(v);
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_input() {
        run(
            &ProptestConfig::with_cases(8),
            "failures_panic",
            10usize..20,
            |v| Err(TestCaseError::fail(format!("boom on {v}"))),
        );
    }

    #[test]
    fn rejects_are_retried() {
        let counter = std::cell::Cell::new(0u32);
        run(
            &ProptestConfig::with_cases(5),
            "rejects_are_retried",
            0u64..10,
            |v| {
                if v % 2 == 0 {
                    return Err(TestCaseError::reject("even"));
                }
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 5);
    }

    #[test]
    fn combinators_compose() {
        let strat = (0usize..4).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n..=n));
        run(
            &ProptestConfig::with_cases(16),
            "combinators_compose",
            strat,
            |v| {
                assert!(v.len() < 4);
                assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
                Ok(())
            },
        );
    }
}
