//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal API-compatible stand-ins. This shim runs each
//! benchmark closure for a fixed number of timed iterations and prints a
//! mean wall-clock duration — no statistics, plots, or baselines. It keeps
//! the bench harness compiling and producing usable numbers, nothing more.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    last: Option<Duration>,
}

impl Bencher {
    fn new(iters: u64) -> Bencher {
        Bencher { iters, last: None }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup round, then the timed loop.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last = Some(start.elapsed());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.last = Some(total);
    }
}

fn report(name: &str, iters: u64, elapsed: Option<Duration>) {
    match elapsed {
        Some(e) if iters > 0 => {
            let per = e.as_secs_f64() / iters as f64;
            println!("bench {name:<40} {per:>12.3e} s/iter ({iters} iters)");
        }
        _ => println!("bench {name:<40} (no timing recorded)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark (criterion's sample count
    /// is repurposed as the iteration count in this shim).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size as u64);
        f(&mut b);
        report(name, b.iters, b.last);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size as u64);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.iters, b.last);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size as u64);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.iters, b.last);
        self
    }

    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4, "1 warmup + 3 timed");
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
